// Hammers DashboardService and the shared-state components beneath it from
// many threads at once. These tests exist to give TSan and the clang
// thread-safety annotations something real to chew on: the lock-free MVCC
// read path (catalog snapshots pinned per query), the write-side ingest
// mutex, CubeCache::mu_, and HttpServer::mu_ are all contended here.
// There is deliberately no lock in DashboardService itself — queries pin
// immutable catalog versions instead of taking a facade lock, ingest
// publishes new versions with a single atomic swap, and these tests are
// what keeps that contract honest: readers must keep completing, with
// bit-identical answers and accounting, while publications land.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dashboard/dashboard_service.h"
#include "test_helpers.h"
#include "util/clock.h"

namespace rased {
namespace {

std::string Fetch(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Everything after the header block. Responses carry a per-request
/// X-Rased-Trace-Id header, so byte-for-byte agreement holds for bodies,
/// not for whole responses.
std::string Body(const std::string& response) {
  size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? response : response.substr(at + 4);
}

class ConcurrentQueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("concurrent-queries-test");
    rased_ = testing_helpers::MakePopulatedRased(
                 env::JoinPath(dir_->path(), "rased"))
                 .release();
    ASSERT_NE(rased_, nullptr);
    service_ = new DashboardService(rased_);
    ASSERT_TRUE(service_->Start(0).ok());
  }

  static void TearDownTestSuite() {
    service_->Stop();
    delete service_;
    delete rased_;
    delete dir_;
    service_ = nullptr;
    rased_ = nullptr;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static Rased* rased_;
  static DashboardService* service_;
};

TempDir* ConcurrentQueriesTest::dir_ = nullptr;
Rased* ConcurrentQueriesTest::rased_ = nullptr;
DashboardService* ConcurrentQueriesTest::service_ = nullptr;

// N worker threads, each firing a mix of every dashboard endpoint. All
// responses must be well-formed 200s/400s — no torn bodies, no crashes —
// and the total served must match what we sent.
TEST_F(ConcurrentQueriesTest, MixedEndpointsFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  const std::string targets[] = {
      "/api/query?from=2021-01-01&to=2021-02-28&group=country",
      "/api/query?group=country,update_type&percentage=1",
      "/api/query?group=date&format=timeseries",
      "/api/sql?q=SELECT%20Country,%20COUNT(*)%20FROM%20UpdateList%20"
      "GROUP%20BY%20Country",
      "/api/stats",
      "/api/zones",
      "/api/query?from=bogus",  // parse error path, must 400 not crash
  };
  constexpr size_t kNumTargets = sizeof(targets) / sizeof(targets[0]);

  std::atomic<int> ok{0};
  std::atomic<int> client_error{0};
  std::atomic<int> malformed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string& target =
            targets[static_cast<size_t>(t + i) % kNumTargets];
        std::string response = Fetch(service_->port(), target);
        if (response.find("200 OK") != std::string::npos) {
          ++ok;
        } else if (response.find("400 Bad Request") != std::string::npos) {
          ++client_error;
        } else {
          ++malformed;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(client_error.load(), 0);  // the bogus-date target
  EXPECT_EQ(ok.load() + client_error.load(),
            kThreads * kRequestsPerThread);
}

// Identical concurrent queries must all see the same answer: the cache and
// executor may not corrupt shared state under contention.
TEST_F(ConcurrentQueriesTest, ConcurrentIdenticalQueriesAgree) {
  constexpr int kThreads = 6;
  const std::string target =
      "/api/query?from=2021-01-01&to=2021-02-28&group=country&format=csv";
  const std::string first = Fetch(service_->port(), target);
  ASSERT_NE(first.find("200 OK"), std::string::npos);
  const std::string expected = Body(first);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        std::string response = Fetch(service_->port(), target);
        if (response.find("200 OK") == std::string::npos ||
            Body(response) != expected) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Drives CubeCache directly from many threads under the LRU policy:
// readers hold shared_ptrs across concurrent evictions and must never see
// a dangling cube. This is the cache's documented threading contract.
TEST_F(ConcurrentQueriesTest, CubeCacheParallelFindInsertInvalidate) {
  CacheOptions options;
  // Tiny budget — room for only a few sparse-encoded one-cell cubes — to
  // force constant eviction.
  options.byte_budget = 100;
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  CubeSchema schema = CubeSchema::BenchScale();

  constexpr int kThreads = 8;
  constexpr int kDays = 16;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        Date day = Date::FromYmd(2021, 1, 1 + (t + i) % kDays);
        CubeKey key = CubeKey::Daily(day);
        std::shared_ptr<const DataCube> hit = cache.Find(key);
        if (hit != nullptr) {
          // The cube must stay readable even if another thread evicts it
          // right now.
          if (hit->Total() != static_cast<uint64_t>(day.day())) {
            failed.store(true);
          }
        } else {
          DataCube cube(schema);
          cube.Add(0, 0, 0, 0, static_cast<uint64_t>(day.day()));
          cache.Insert(key, cube);
        }
        if (i % 64 == 0) {
          cache.InvalidateRange(
              DateRange(Date::FromYmd(2021, 1, 1),
                        Date::FromYmd(2021, 1, kDays)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  CacheStats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(cache.bytes_used(), options.byte_budget);
}

// Index metadata lookups are internally synchronized; hammer them while a
// stats endpoint (which also walks the catalog) runs over HTTP.
TEST_F(ConcurrentQueriesTest, IndexMetadataReadsRaceStatsEndpoint) {
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<bool> empty_coverage{false};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      TemporalIndex* index = rased_->index();
      while (!stop.load()) {
        DateRange coverage = index->coverage();
        if (coverage.empty()) {
          empty_coverage.store(true);
          break;
        }
        index->Contains(CubeKey::Daily(coverage.first));
        index->ExistingKeys(Level::kWeekly, coverage);
        index->LatestKeys(Level::kDaily, 4);
        index->StorageStats();
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    std::string response = Fetch(service_->port(), "/api/stats");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(empty_coverage.load());
}

// The accounting side of the refactor: every query owns its QueryStats,
// accumulated through a per-call IoStats threaded from the pager up. With
// the static recency cache the I/O of a query is a pure function of the
// query, so an 8-way concurrent run must reproduce the serial run's
// accounting bit for bit (cpu_micros is wall time and excluded).
TEST_F(ConcurrentQueriesTest, PerQueryStatsMatchSerialRunExactly) {
  constexpr int kThreads = 8;

  std::vector<AnalysisQuery> queries;
  for (int m = 1; m <= 2; ++m) {
    for (int day = 1; day <= 24; day += 3) {
      AnalysisQuery q;
      q.range = DateRange(Date::FromYmd(2021, m, day),
                          Date::FromYmd(2021, m, day + 4));
      q.group_country = true;
      queries.push_back(q);
    }
  }

  std::vector<QueryStats> reference(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = rased_->Query(queries[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reference[i] = result.value().stats;
  }

  std::atomic<int> divergences{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // Every worker runs the full list, so each query executes 8 times
    // concurrently with itself and with every other query.
    threads.emplace_back([&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        auto result = rased_->Query(queries[i]);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        const QueryStats& got = result.value().stats;
        const QueryStats& want = reference[i];
        bool same = got.io == want.io &&
                    got.cubes_total == want.cubes_total &&
                    got.cubes_from_cache == want.cubes_from_cache &&
                    got.cubes_from_disk == want.cubes_from_disk;
        for (int level = 0; level < 4; ++level) {
          same = same &&
                 got.cubes_per_level[level] == want.cubes_per_level[level];
        }
        if (!same) ++divergences;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(divergences.load(), 0);
}

// Readers keep getting the same (correct) answers while a writer appends
// new days through the facade's write path. This test and the MVCC tests
// after it grow the instance's coverage (appends must stay consecutive),
// so later tests derive their first append day from live coverage rather
// than hardcoding dates — correct both under ctest (one process per test)
// and when the binary runs every test in one process.
TEST_F(ConcurrentQueriesTest, QueriesStayCorrectWhileIngestAppendsDays) {
  constexpr int kReaders = 4;
  constexpr int kNewDays = 14;

  AnalysisQuery history;
  history.range = DateRange(Date::FromYmd(2021, 1, 1),
                            Date::FromYmd(2021, 2, 28));
  history.group_country = true;
  auto baseline = rased_->Query(history);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::atomic<bool> done{false};
  std::atomic<int> wrong_answers{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      // Bounded and paced: a tight shared-lock loop would starve the
      // writer forever under glibc's reader-preferring rwlock, and this
      // test is about correct answers during appends, not lock fairness.
      for (int i = 0; i < 200 && !done.load(); ++i) {
        // Alternate the direct facade path and the HTTP path; both must
        // see the settled history untouched by the concurrent appends.
        auto result = rased_->Query(history);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        if (result.value().rows.size() != baseline.value().rows.size()) {
          ++wrong_answers;
        }
        uint64_t total = 0, expected = 0;
        for (const ResultRow& row : result.value().rows) total += row.count;
        for (const ResultRow& row : baseline.value().rows) {
          expected += row.count;
        }
        if (total != expected) ++wrong_answers;
        if (t == 0 && i % 8 == 0) {
          std::string response = Fetch(
              service_->port(),
              "/api/query?from=2021-01-01&to=2021-02-28&group=country");
          if (response.find("200 OK") == std::string::npos) ++failures;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  CubeSchema schema = rased_->options().schema;
  std::thread writer([&] {
    for (int day = 1; day <= kNewDays; ++day) {
      DataCube cube(schema);
      cube.Add(0, 0, 0, 0, static_cast<uint64_t>(day));
      Status s = rased_->IngestDayCube(Date::FromYmd(2021, 3, day), cube);
      if (!s.ok()) ++failures;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  writer.join();
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_answers.load(), 0);

  // The appended days are queryable once the writer is done.
  AnalysisQuery march;
  march.range = DateRange(Date::FromYmd(2021, 3, 1),
                          Date::FromYmd(2021, 3, kNewDays));
  march.group_date = true;
  auto after = rased_->Query(march);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  uint64_t total = 0;
  for (const ResultRow& row : after.value().rows) total += row.count;
  EXPECT_EQ(total, static_cast<uint64_t>(kNewDays * (kNewDays + 1) / 2));
}

// Bit-for-bit row comparison (doubles compared exactly: percentage is a
// deterministic function of count and the static zone sizes).
bool RowsEqual(const std::vector<ResultRow>& a,
               const std::vector<ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].element_type != b[i].element_type || a[i].country != b[i].country ||
        a[i].road_type != b[i].road_type ||
        a[i].update_type != b[i].update_type ||
        a[i].has_date != b[i].has_date || a[i].count != b[i].count ||
        a[i].percentage != b[i].percentage) {
      return false;
    }
    if (a[i].has_date && !(a[i].date == b[i].date)) return false;
  }
  return true;
}

// The MVCC publication contract, single-threaded and exact: a reader
// pinned before a publication keeps serving the old epoch bit for bit and
// never sees the new day; a reader arriving after the swap sees the new
// epoch and the new day. Also checks the epoch surfaces: QueryStats,
// /api/trace, and the rased_index_epoch gauge.
TEST_F(ConcurrentQueriesTest, PinnedSnapshotServesOldEpochBitForBit) {
  const TemporalIndex* index = rased_->index();
  const uint64_t epoch_before = index->epoch();

  AnalysisQuery history;
  history.range = DateRange(Date::FromYmd(2021, 1, 1),
                            Date::FromYmd(2021, 2, 28));
  history.group_country = true;

  CatalogSnapshot pinned = index->Snapshot();
  EXPECT_EQ(pinned.epoch(), epoch_before);
  auto before = rased_->executor()->Execute(history, pinned);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.value().stats.epoch, epoch_before);

  // Publish one new version: the next day after current coverage (the
  // append sequence must stay consecutive, and under ctest each test case
  // runs in its own process, so the day is derived, not hardcoded).
  const Date new_day = pinned.coverage().last.next();
  DataCube cube(rased_->options().schema);
  cube.Add(0, 0, 0, 0, 77);
  ASSERT_TRUE(rased_->IngestDayCube(new_day, cube).ok());
  EXPECT_EQ(index->epoch(), epoch_before + 1);
  // The displaced version is pinned by `pinned`, so it is retired but not
  // yet reclaimed.
  EXPECT_GE(index->retired_versions(), 1u);

  // The pinned reader still runs to completion against its version —
  // identical rows, identical accounting, old epoch.
  auto after_pinned = rased_->executor()->Execute(history, pinned);
  ASSERT_TRUE(after_pinned.ok()) << after_pinned.status().ToString();
  EXPECT_EQ(after_pinned.value().stats.epoch, epoch_before);
  EXPECT_TRUE(RowsEqual(after_pinned.value().rows, before.value().rows));
  EXPECT_TRUE(after_pinned.value().stats.io == before.value().stats.io);

  // A fresh query pins the new version.
  auto fresh = rased_->Query(history);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh.value().stats.epoch, epoch_before + 1);
  EXPECT_TRUE(RowsEqual(fresh.value().rows, before.value().rows));

  // The new day exists only in the new version: the pinned snapshot's
  // coverage ends before it, so its window is empty.
  AnalysisQuery newday;
  newday.range = DateRange(new_day, new_day);
  auto old_view = rased_->executor()->Execute(newday, pinned);
  ASSERT_TRUE(old_view.ok()) << old_view.status().ToString();
  EXPECT_TRUE(old_view.value().rows.empty());
  auto new_view = rased_->Query(newday);
  ASSERT_TRUE(new_view.ok()) << new_view.status().ToString();
  uint64_t total = 0;
  for (const ResultRow& row : new_view.value().rows) total += row.count;
  EXPECT_EQ(total, 77u);

  // Epoch observability: the trace ring and the metrics exporter carry it.
  // An HTTP query first, so the ring has at least one trace to render.
  std::string served = Fetch(
      service_->port(),
      "/api/query?from=2021-01-01&to=2021-02-28&group=country");
  EXPECT_NE(served.find("200 OK"), std::string::npos);
  std::string trace = Fetch(service_->port(), "/api/trace");
  EXPECT_NE(trace.find("\"epoch\""), std::string::npos);
  std::string metrics = Fetch(service_->port(), "/metrics");
  EXPECT_NE(metrics.find("rased_index_epoch"), std::string::npos);
  EXPECT_NE(metrics.find("rased_index_retired_versions"), std::string::npos);
  EXPECT_NE(metrics.find("rased_index_publications_total"), std::string::npos);
}

// Readers issue continuously while a deliberately slow writer publishes 14
// days, and observe zero stalls. "Latency" here is the system's
// deterministic latency model: the wall clock is a FakeClock that only the
// writer advances (one simulated second per ingested day), so a reader
// that never waits for the writer completes every query with exactly the
// no-ingest baseline's device-model time and rows — any blocking on the
// write path would surface as nondeterministic extra latency or torn
// answers. Appends continue from wherever coverage currently ends.
TEST_F(ConcurrentQueriesTest, ReadersSeeNoStallsDuringSlowIngest) {
  constexpr int kReaders = 4;
  constexpr int kNewDays = 14;
  constexpr int64_t kSlowIngestMicros = 1000000;  // 1 s of fake time per day

  AnalysisQuery history;
  history.range = DateRange(Date::FromYmd(2021, 1, 1),
                            Date::FromYmd(2021, 2, 28));
  history.group_country = true;
  auto baseline = rased_->Query(history);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const uint64_t epoch_before = rased_->index()->epoch();

  FakeClock fake_clock;
  SetClockForTesting(&fake_clock);

  std::atomic<int> warmup_queries{0};
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<int> divergences{0};
  std::atomic<int> degraded{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 400 && !(done.load() && i > 4); ++i) {
        auto result = rased_->Query(history);
        if (!result.ok()) {
          ++failures;
        } else {
          if (!RowsEqual(result.value().rows, baseline.value().rows)) {
            ++divergences;
          }
          // Device-model latency is a pure function of (query, pinned
          // version); concurrent publications must not add a microsecond.
          if (result.value().stats.io.simulated_device_micros !=
              baseline.value().stats.io.simulated_device_micros) {
            ++degraded;
          }
        }
        if (i == 0) ++warmup_queries;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  // Let every reader land at least one pre-publication query, then
  // publish kNewDays versions, each "taking" one second of fake time.
  while (warmup_queries.load() < kReaders) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  CubeSchema schema = rased_->options().schema;
  Date next_day = rased_->index()->coverage().last.next();
  for (int day = 0; day < kNewDays; ++day) {
    fake_clock.Advance(kSlowIngestMicros / 2);
    DataCube cube(schema);
    cube.Add(0, 0, 0, 0, 1);
    Status s = rased_->IngestDayCube(next_day, cube);
    if (!s.ok()) ++failures;
    next_day = next_day.next();
    fake_clock.Advance(kSlowIngestMicros / 2);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  SetClockForTesting(nullptr);

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(divergences.load(), 0);
  EXPECT_EQ(degraded.load(), 0);
  // Every publication bumped the epoch; queries before the first swap saw
  // the old epoch (asserted per-query above via the pinned baseline
  // accounting), and a post-ingest query pins the newest version.
  auto after = rased_->Query(history);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().stats.epoch,
            epoch_before + static_cast<uint64_t>(kNewDays));
  EXPECT_TRUE(RowsEqual(after.value().rows, baseline.value().rows));
}

// WarmCache refills the (statically warmed) cache against the currently
// published version while readers keep querying: the warm pass holds only
// the write-side mutex, so readers never block on it and every answer
// stays bit-for-bit correct even mid-refill (page-validated probes just
// miss entries the warm pass has not restored yet).
TEST_F(ConcurrentQueriesTest, WarmCacheDoesNotBlockOrCorruptReaders) {
  constexpr int kReaders = 4;

  AnalysisQuery history;
  history.range = DateRange(Date::FromYmd(2021, 1, 1),
                            Date::FromYmd(2021, 2, 28));
  history.group_country = true;
  auto baseline = rased_->Query(history);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<int> divergences{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200 && !done.load(); ++i) {
        auto result = rased_->Query(history);
        if (!result.ok()) {
          ++failures;
        } else if (!RowsEqual(result.value().rows, baseline.value().rows)) {
          ++divergences;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  for (int i = 0; i < 6; ++i) {
    Status s = rased_->WarmCache();
    if (!s.ok()) ++failures;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(divergences.load(), 0);
}

}  // namespace
}  // namespace rased
