#include "dashboard/json_writer.h"

#include <limits>

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(std::move(w).Finish(), "{}");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter w;
  w.BeginArray();
  w.EndArray();
  EXPECT_EQ(std::move(w).Finish(), "[]");
}

TEST(JsonWriterTest, ScalarValues) {
  JsonWriter w;
  w.BeginArray();
  w.Value("text");
  w.Value(static_cast<int64_t>(-5));
  w.Value(static_cast<uint64_t>(18446744073709551615ull));
  w.Value(1.5);
  w.Value(true);
  w.Value(false);
  w.Null();
  w.EndArray();
  EXPECT_EQ(std::move(w).Finish(),
            "[\"text\",-5,18446744073709551615,1.5,true,false,null]");
}

TEST(JsonWriterTest, ObjectWithKeys) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "RASED");
  w.KV("cubes", static_cast<uint64_t>(6887));
  w.EndObject();
  EXPECT_EQ(std::move(w).Finish(), "{\"name\":\"RASED\",\"cubes\":6887}");
}

TEST(JsonWriterTest, Nesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows");
  w.BeginArray();
  w.BeginObject();
  w.KV("a", 1);
  w.EndObject();
  w.BeginObject();
  w.KV("b", 2);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(std::move(w).Finish(), "{\"rows\":[{\"a\":1},{\"b\":2}]}");
}

TEST(JsonWriterTest, StringEscaping) {
  JsonWriter w;
  w.BeginObject();
  w.KV("weird", "quote\" slash\\ newline\n tab\t");
  w.EndObject();
  EXPECT_EQ(std::move(w).Finish(),
            "{\"weird\":\"quote\\\" slash\\\\ newline\\n tab\\t\"}");
}

TEST(JsonWriterTest, ControlCharactersEscapedAsUnicode) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::string_view("\x01", 1));
  w.EndArray();
  EXPECT_EQ(std::move(w).Finish(), "[\"\\u0001\"]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(std::move(w).Finish(), "[null,null]");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter w;
  w.Value(static_cast<int64_t>(7));
  EXPECT_EQ(std::move(w).Finish(), "7");
}

}  // namespace
}  // namespace rased
