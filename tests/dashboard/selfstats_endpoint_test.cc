// End-to-end coverage of the self-monitoring surface: content types on
// /metrics and the JSON API, /healthz and /readyz semantics, deterministic
// /api/selfstats series under a FakeClock, and trace-id correlation across
// the response header, the trace ring, and captured log lines.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dashboard/dashboard_service.h"
#include "obs/request_context.h"
#include "test_helpers.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {
namespace {

std::string FetchRaw(int port, const std::string& raw_request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, raw_request.data(), raw_request.size(), 0);
  std::string response;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Fetch(int port, const std::string& target) {
  return FetchRaw(port,
                  "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

/// Value of `name` in the response's header block ("" when absent).
std::string HeaderValue(const std::string& response, const std::string& name) {
  const std::string needle = "\r\n" + name + ": ";
  const size_t at = response.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = response.find("\r\n", start);
  return end == std::string::npos ? "" : response.substr(start, end - start);
}

class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(int64_t start_micros) : clock_(start_micros) {
    SetClockForTesting(&clock_);
  }
  ~ScopedFakeClock() { SetClockForTesting(nullptr); }

  FakeClock* clock() { return &clock_; }

 private:
  FakeClock clock_;
};

class DashboardSelfstatsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("dashboard-selfstats-test");
    rased_ = testing_helpers::MakePopulatedRased(
                 env::JoinPath(dir_->path(), "rased"))
                 .release();
    ASSERT_NE(rased_, nullptr);
    // The background sampler stays off: tests drive history()->SampleOnce()
    // under a FakeClock so every retained point is scripted.
    DashboardOptions options;
    options.start_sampler = false;
    service_ = new DashboardService(rased_, options);
    ASSERT_TRUE(service_->Start(0).ok());
  }

  static void TearDownTestSuite() {
    service_->Stop();
    delete service_;
    delete rased_;
    delete dir_;
    service_ = nullptr;
    rased_ = nullptr;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static Rased* rased_;
  static DashboardService* service_;
};

TempDir* DashboardSelfstatsTest::dir_ = nullptr;
Rased* DashboardSelfstatsTest::rased_ = nullptr;
DashboardService* DashboardSelfstatsTest::service_ = nullptr;

TEST_F(DashboardSelfstatsTest, ContentTypeHeadersAreExact) {
  EXPECT_EQ(HeaderValue(Fetch(service_->port(), "/metrics"), "Content-Type"),
            "text/plain; version=0.0.4; charset=utf-8");
  for (const char* target :
       {"/api/stats", "/api/zones", "/api/trace", "/api/selfstats",
        "/readyz"}) {
    EXPECT_EQ(HeaderValue(Fetch(service_->port(), target), "Content-Type"),
              "application/json")
        << target;
  }
  EXPECT_EQ(HeaderValue(Fetch(service_->port(), "/healthz"), "Content-Type"),
            "text/plain; charset=utf-8");
  EXPECT_EQ(HeaderValue(Fetch(service_->port(), "/api/selfstats?format=tsv"),
                        "Content-Type"),
            "text/tab-separated-values; charset=utf-8");
}

TEST_F(DashboardSelfstatsTest, HealthzIsAlwaysOk) {
  const std::string response = Fetch(service_->port(), "/healthz");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(Body(response), "ok\n");
}

TEST_F(DashboardSelfstatsTest, ReadyzReportsReadyWithPerCheckDetail) {
  const std::string response = Fetch(service_->port(), "/readyz");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"ready\":true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"catalog_published\":true"), std::string::npos);
  EXPECT_NE(body.find("\"ingest_not_wedged\":true"), std::string::npos);
  EXPECT_NE(body.find("\"slo_not_burning\":true"), std::string::npos);
  // The default objectives are evaluated (and idle: too few events).
  EXPECT_NE(body.find("\"objective\":\"query_latency_p99\""),
            std::string::npos);
  EXPECT_NE(body.find("\"objective\":\"http_error_rate\""),
            std::string::npos);
}

TEST_F(DashboardSelfstatsTest, SelfstatsSeriesAreDeterministicUnderFakeClock) {
  // Register the probe series before the first sample so the layout is
  // stable across both samples.
  Counter* probe = rased_->metrics()->GetCounter(
      "rased_selftest_probe_total", "scripted test counter");
  ScopedFakeClock fake(1000000000);  // t = 1000s

  probe->Increment(5);
  service_->history()->SampleOnce();
  fake.clock()->Advance(5000000);
  probe->Increment(7);
  service_->history()->SampleOnce();

  const std::string response = Fetch(
      service_->port(), "/api/selfstats?family=rased_selftest_probe_total");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"name\":\"rased_selftest_probe_total\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"type\":\"counter\""), std::string::npos);
  // Bit-for-bit: the scripted counter trajectory at the scripted stamps.
  EXPECT_NE(body.find("\"points\":[{\"t\":1000000000,\"v\":[5]},"
                      "{\"t\":1005000000,\"v\":[12]}]"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"samples_retained\":2"), std::string::npos);

  // The TSV rendering of the same history is equally deterministic.
  const std::string tsv = Body(
      Fetch(service_->port(),
            "/api/selfstats?family=rased_selftest_probe_total&format=tsv"));
  EXPECT_EQ(tsv.rfind("#selfstats now=", 0), 0u) << tsv;
  EXPECT_NE(tsv.find("rased_selftest_probe_total\t\tcounter\t\t"
                     "1000000000:5 1005000000:12\n"),
            std::string::npos)
      << tsv;

  // Family windowing: a window ending before the first sample keeps the
  // series but no points.
  const std::string windowed = Body(Fetch(
      service_->port(),
      "/api/selfstats?family=rased_selftest_probe_total&window=1"));
  EXPECT_NE(windowed.find("\"points\":[{\"t\":1005000000,\"v\":[12]}]"),
            std::string::npos)
      << windowed;

  EXPECT_NE(Fetch(service_->port(), "/api/selfstats?window=abc")
                .find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(Fetch(service_->port(), "/api/selfstats?format=yaml")
                .find("400 Bad Request"),
            std::string::npos);
}

TEST_F(DashboardSelfstatsTest, InboundTraceIdCorrelatesHeaderRingAndLogs) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  const std::string response = FetchRaw(
      service_->port(),
      "GET /api/query?group=country HTTP/1.1\r\nHost: localhost\r\n"
      "X-Rased-Trace-Id: 00000000deadbeef\r\n\r\n");
  const std::string log = ::testing::internal::GetCapturedStderr();
  SetLogLevel(LogLevel::kInfo);

  ASSERT_NE(response.find("200 OK"), std::string::npos);
  // 1. The response echoes the adopted id.
  EXPECT_EQ(HeaderValue(response, "X-Rased-Trace-Id"), "00000000deadbeef");
  // 2. The captured access log carries the same id in its line prefix.
  EXPECT_NE(log.find("trace=00000000deadbeef"), std::string::npos) << log;
  // 3. The trace ring entry for the query carries the same id.
  const std::string traces = Body(Fetch(service_->port(), "/api/trace"));
  EXPECT_NE(traces.find("\"trace_id\":\"00000000deadbeef\""),
            std::string::npos);
}

TEST_F(DashboardSelfstatsTest, MintedTraceIdWhenHeaderAbsentOrInvalid) {
  const std::string response = Fetch(service_->port(), "/healthz");
  const std::string minted = HeaderValue(response, "X-Rased-Trace-Id");
  ASSERT_EQ(minted.size(), 16u) << response;
  Result<uint64_t> parsed = ParseTraceId(minted);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed.value(), 0u);

  // A malformed inbound id is replaced by a freshly minted one.
  const std::string replaced = HeaderValue(
      FetchRaw(service_->port(),
               "GET /healthz HTTP/1.1\r\nHost: localhost\r\n"
               "X-Rased-Trace-Id: not-hex\r\n\r\n"),
      "X-Rased-Trace-Id");
  EXPECT_EQ(replaced.size(), 16u);
  EXPECT_TRUE(ParseTraceId(replaced).ok());

  // Two requests never share a minted id.
  const std::string other = HeaderValue(Fetch(service_->port(), "/healthz"),
                                        "X-Rased-Trace-Id");
  EXPECT_NE(other, minted);
}

}  // namespace
}  // namespace rased
