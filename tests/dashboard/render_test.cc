#include "dashboard/render.h"

#include <gtest/gtest.h>

#include "osm/road_types.h"

namespace rased {
namespace {

class RenderTest : public ::testing::Test {
 protected:
  RenderTest() : world_(305), road_types_(150) {
    ctx_.world = &world_;
    ctx_.road_types = &road_types_;
    germany_ = world_.FindByName("Germany").value();
    france_ = world_.FindByName("France").value();
  }

  ResultRow Row(int32_t country, uint64_t count) {
    ResultRow row;
    row.country = country;
    row.count = count;
    return row;
  }

  WorldMap world_;
  RoadTypeTable road_types_;
  RenderContext ctx_;
  ZoneId germany_ = 0, france_ = 0;
};

TEST_F(RenderTest, ContextResolvesNames) {
  EXPECT_EQ(ctx_.CountryName(germany_), "Germany");
  EXPECT_EQ(ctx_.CountryName(-1), "*");
  EXPECT_EQ(ctx_.RoadTypeName(road_types_.Lookup("residential")),
            "residential");
  EXPECT_EQ(ctx_.RoadTypeName(-1), "*");
}

TEST_F(RenderTest, TableSortsByCountDesc) {
  QueryResult result;
  result.rows = {Row(germany_, 10), Row(france_, 99)};
  AnalysisQuery q;
  q.group_country = true;
  std::string table = RenderTable(result, q, ctx_);
  size_t france_pos = table.find("France");
  size_t germany_pos = table.find("Germany");
  ASSERT_NE(france_pos, std::string::npos);
  ASSERT_NE(germany_pos, std::string::npos);
  EXPECT_LT(france_pos, germany_pos);
  // Counts are thousands-separated like the paper's Figure 3.
  EXPECT_NE(table.find("99"), std::string::npos);
}

TEST_F(RenderTest, TableThousandsSeparators) {
  QueryResult result;
  result.rows = {Row(germany_, 9142858)};
  AnalysisQuery q;
  q.group_country = true;
  EXPECT_NE(RenderTable(result, q, ctx_).find("9,142,858"),
            std::string::npos);
}

TEST_F(RenderTest, TableTruncatesLongResults) {
  QueryResult result;
  for (int i = 0; i < 30; ++i) {
    result.rows.push_back(Row(static_cast<int32_t>(world_.country_ids()[i]),
                              100 - static_cast<uint64_t>(i)));
  }
  AnalysisQuery q;
  q.group_country = true;
  std::string table = RenderTable(result, q, ctx_, TableSort::kCount, 10);
  EXPECT_NE(table.find("20 more rows"), std::string::npos);
}

TEST_F(RenderTest, TablePercentageColumn) {
  QueryResult result;
  ResultRow row = Row(germany_, 500);
  row.percentage = 0.1234;
  result.rows = {row};
  AnalysisQuery q;
  q.group_country = true;
  q.percentage = true;
  std::string table = RenderTable(result, q, ctx_);
  EXPECT_NE(table.find("percent"), std::string::npos);
  EXPECT_NE(table.find("0.1234"), std::string::npos);
}

TEST_F(RenderTest, BarChartScalesBars) {
  QueryResult result;
  result.rows = {Row(germany_, 100), Row(france_, 50)};
  AnalysisQuery q;
  q.group_country = true;
  std::string chart = RenderBarChart(result, q, ctx_, /*width=*/40);
  // Germany's bar is twice France's.
  size_t g_line_start = chart.find("Germany");
  size_t f_line_start = chart.find("France");
  ASSERT_NE(g_line_start, std::string::npos);
  ASSERT_NE(f_line_start, std::string::npos);
  auto count_hashes = [&chart](size_t from) {
    size_t end = chart.find('\n', from);
    return std::count(chart.begin() + static_cast<long>(from),
                      chart.begin() + static_cast<long>(end), '#');
  };
  EXPECT_EQ(count_hashes(g_line_start), 40);
  EXPECT_EQ(count_hashes(f_line_start), 20);
}

TEST_F(RenderTest, PivotTableHasPaperColumns) {
  QueryResult result;
  ResultRow row;
  row.country = germany_;
  row.element_type = static_cast<int32_t>(ElementType::kWay);
  row.update_type = static_cast<int32_t>(UpdateType::kNew);
  row.count = 123456;
  result.rows.push_back(row);
  row.update_type = static_cast<int32_t>(UpdateType::kGeometry);
  row.count = 1000;
  result.rows.push_back(row);

  std::string pivot = RenderCountryElementPivot(result, ctx_);
  EXPECT_NE(pivot.find("Ways Created"), std::string::npos);
  EXPECT_NE(pivot.find("Ways Modified"), std::string::npos);
  EXPECT_NE(pivot.find("123,456"), std::string::npos);
  EXPECT_NE(pivot.find("124,456"), std::string::npos);  // the All column
}

TEST_F(RenderTest, TimeSeriesRequiresDateGrouping) {
  QueryResult result;
  AnalysisQuery q;
  EXPECT_NE(RenderTimeSeries(result, q, ctx_).find("requires"),
            std::string::npos);
}

TEST_F(RenderTest, TimeSeriesRendersSeriesPerCountry) {
  QueryResult result;
  for (int day = 0; day < 30; ++day) {
    for (ZoneId c : {germany_, france_}) {
      ResultRow row;
      row.country = static_cast<int32_t>(c);
      row.date = Date::FromYmd(2021, 1, 1).AddDays(day);
      row.has_date = true;
      row.count = static_cast<uint64_t>(c == germany_ ? 100 + day : 20);
      result.rows.push_back(row);
    }
  }
  AnalysisQuery q;
  q.group_date = true;
  q.group_country = true;
  std::string chart = RenderTimeSeries(result, q, ctx_, 40, 10);
  EXPECT_NE(chart.find("Germany"), std::string::npos);
  EXPECT_NE(chart.find("France"), std::string::npos);
  EXPECT_NE(chart.find("2021-01-01"), std::string::npos);
  EXPECT_NE(chart.find("max"), std::string::npos);
}

TEST_F(RenderTest, ChoroplethShadesActiveZones) {
  QueryResult result;
  result.rows = {Row(germany_, 1000000)};
  std::string map = RenderChoropleth(result, ctx_, 60, 20);
  // Must contain ocean, land with zero activity, and shaded cells.
  EXPECT_NE(map.find('~'), std::string::npos);
  EXPECT_NE(map.find(' '), std::string::npos);
  EXPECT_NE(map.find('@'), std::string::npos);
  // 20 lines of 60 chars.
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 20);
}

TEST_F(RenderTest, TimelapseOneFramePerMonth) {
  QueryResult result;
  for (int m = 1; m <= 3; ++m) {
    ResultRow row = Row(germany_, 100);
    row.date = Date::FromYmd(2021, m, 10);
    row.has_date = true;
    result.rows.push_back(row);
  }
  auto frames = RenderTimelapse(result, ctx_, 40, 12);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_NE(frames[0].find("2021-01-01"), std::string::npos);
  EXPECT_NE(frames[2].find("2021-03-01"), std::string::npos);
}

TEST_F(RenderTest, CsvHeaderFollowsGrouping) {
  QueryResult result;
  ResultRow row = Row(germany_, 42);
  row.update_type = static_cast<int32_t>(UpdateType::kNew);
  result.rows = {row};
  AnalysisQuery q;
  q.group_country = true;
  q.group_update_type = true;
  std::string csv = RenderCsv(result, q, ctx_);
  EXPECT_EQ(csv, "country,update_type,count\nGermany,new,42\n");
}

TEST_F(RenderTest, CsvQuotesSpecialCharacters) {
  QueryResult result;
  result.rows = {Row(germany_, 1)};
  AnalysisQuery q;
  q.group_country = true;
  // Inject a troublesome road type name through the road-type column.
  RoadTypeTable roads(100);  // room beyond the canonical taxonomy
  RoadTypeId tricky = roads.Intern("with,comma\"quote");
  ASSERT_EQ(roads.Name(tricky), "with,comma\"quote");
  RenderContext ctx{&world_, &roads};
  result.rows[0].road_type = tricky;
  q.group_road_type = true;
  std::string csv = RenderCsv(result, q, ctx);
  EXPECT_NE(csv.find("\"with,comma\"\"quote\""), std::string::npos);
}

TEST_F(RenderTest, CsvWithDateAndPercentage) {
  QueryResult result;
  ResultRow row = Row(germany_, 100);
  row.date = Date::FromYmd(2021, 5, 4);
  row.has_date = true;
  row.percentage = 1.25;
  result.rows = {row};
  AnalysisQuery q;
  q.group_country = true;
  q.group_date = true;
  q.percentage = true;
  std::string csv = RenderCsv(result, q, ctx_);
  EXPECT_NE(csv.find("country,date,count,percentage"), std::string::npos);
  EXPECT_NE(csv.find("Germany,2021-05-04,100,1.250000"), std::string::npos);
}

TEST_F(RenderTest, JsonIncludesRowsAndStats) {
  QueryResult result;
  result.rows = {Row(germany_, 42)};
  result.stats.cubes_total = 3;
  result.stats.cubes_from_cache = 2;
  AnalysisQuery q;
  q.group_country = true;
  std::string json = RenderJson(result, q, ctx_);
  EXPECT_NE(json.find("\"country\":\"Germany\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":42"), std::string::npos);
  EXPECT_NE(json.find("\"cubes_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"cubes_from_cache\":2"), std::string::npos);
}

}  // namespace
}  // namespace rased
