// End-to-end coverage of the observability surface: /metrics renders valid
// Prometheus text with every expected family, /api/trace exposes the span
// breakdown, unknown methods get a 405, and device-model metrics are
// bit-identical between a serial and an 8-way concurrent run of the same
// workload.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dashboard/dashboard_service.h"
#include "test_helpers.h"

namespace rased {
namespace {

std::string FetchRaw(int port, const std::string& raw_request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, raw_request.data(), raw_request.size(), 0);
  std::string response;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Fetch(int port, const std::string& target) {
  return FetchRaw(port,
                  "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// Minimal Prometheus text-format check: every line is a comment
// (# HELP/# TYPE) or `name{labels} value` with a numeric value.
bool ParsesAsPrometheusText(const std::string& body, std::string* error) {
  size_t start = 0;
  int samples = 0;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) {
      *error = "body does not end with a newline";
      return false;
    }
    std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        *error = "bad comment line: " + line;
        return false;
      }
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      *error = "no value on line: " + line;
      return false;
    }
    std::string series = line.substr(0, space);
    std::string value = line.substr(space + 1);
    for (size_t i = 0; i < value.size(); ++i) {
      char c = value[i];
      if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+' || c == '.' || c == 'e' || c == 'I' || c == 'n' ||
            c == 'f')) {
        *error = "non-numeric value on line: " + line;
        return false;
      }
    }
    char first = series[0];
    if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
      *error = "bad series name on line: " + line;
      return false;
    }
    size_t brace = series.find('{');
    if (brace != std::string::npos && series.back() != '}') {
      *error = "unbalanced labels on line: " + line;
      return false;
    }
    ++samples;
  }
  if (samples == 0) {
    *error = "no samples in exposition";
    return false;
  }
  return true;
}

class DashboardMetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("dashboard-metrics-test");
    rased_ = testing_helpers::MakePopulatedRased(
                 env::JoinPath(dir_->path(), "rased"))
                 .release();
    ASSERT_NE(rased_, nullptr);
    service_ = new DashboardService(rased_);
    ASSERT_TRUE(service_->Start(0).ok());
  }

  static void TearDownTestSuite() {
    service_->Stop();
    delete service_;
    delete rased_;
    delete dir_;
    service_ = nullptr;
    rased_ = nullptr;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static Rased* rased_;
  static DashboardService* service_;
};

TempDir* DashboardMetricsTest::dir_ = nullptr;
Rased* DashboardMetricsTest::rased_ = nullptr;
DashboardService* DashboardMetricsTest::service_ = nullptr;

TEST_F(DashboardMetricsTest, MetricsEndpointServesPrometheusText) {
  // Drive one query through first so the executor series carry traffic.
  ASSERT_NE(Fetch(service_->port(), "/api/query?group=country")
                .find("200 OK"),
            std::string::npos);

  std::string response = Fetch(service_->port(), "/metrics");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);

  std::string body = Body(response);
  std::string error;
  EXPECT_TRUE(ParsesAsPrometheusText(body, &error)) << error;

  // Every layer of the serving path must be represented.
  for (const char* family :
       {"rased_pager_read_ops_total", "rased_pager_device_micros_total",
        "rased_cache_hits_total", "rased_cache_misses_total",
        "rased_cache_resident_cubes", "rased_index_cubes",
        "rased_index_cube_reads_total", "rased_queries_total",
        "rased_query_cpu_micros_bucket", "rased_query_device_micros_bucket",
        "rased_ingest_records_total", "rased_traces_recorded_total",
        "rased_http_requests_total", "rased_http_request_micros_bucket",
        "rased_http_responses_total",
        "rased_http_malformed_requests_total"}) {
    EXPECT_NE(body.find(family), std::string::npos)
        << "missing family: " << family;
  }
  // Per-endpoint and per-file labels.
  EXPECT_NE(body.find("rased_http_requests_total{endpoint=\"/metrics\"}"),
            std::string::npos);
  EXPECT_NE(body.find("{file=\"index\"}"), std::string::npos);
  EXPECT_NE(body.find("rased_index_cubes{level=\"daily\"} 59"),
            std::string::npos);
}

TEST_F(DashboardMetricsTest, TraceEndpointReturnsSpans) {
  ASSERT_NE(Fetch(service_->port(),
                  "/api/query?from=2021-01-01&to=2021-01-31&group=country")
                .find("200 OK"),
            std::string::npos);

  std::string response = Fetch(service_->port(), "/api/trace");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"traces\""), std::string::npos);
  EXPECT_NE(body.find("\"total_recorded\""), std::string::npos);
  for (const char* span :
       {"\"plan\"", "\"cache_probe\"", "\"fetch\"", "\"aggregate\"",
        "\"render\""}) {
    EXPECT_NE(body.find(span), std::string::npos) << "missing span " << span;
  }
  EXPECT_NE(body.find("\"wall_micros\""), std::string::npos);
  EXPECT_NE(body.find("\"device_micros\""), std::string::npos);
  EXPECT_NE(body.find("\"cubes_from_cache\""), std::string::npos);
}

TEST_F(DashboardMetricsTest, NonGetOnKnownPathIs405AndCounted) {
  Counter* responses_4xx = rased_->metrics()->GetCounter(
      "rased_http_responses_total", "",
      {{"endpoint", "/api/stats"}, {"class", "4xx"}});
  uint64_t before = responses_4xx->value();

  std::string response = FetchRaw(
      service_->port(),
      "POST /api/stats HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos);
  EXPECT_EQ(responses_4xx->value(), before + 1);

  // Unknown paths keep their 404 semantics regardless of method.
  std::string missing = FetchRaw(
      service_->port(), "POST /nope HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
}

TEST_F(DashboardMetricsTest, MalformedRequestLineIsCounted) {
  Counter* malformed = rased_->metrics()->GetCounter(
      "rased_http_malformed_requests_total", "");
  uint64_t before = malformed->value();
  std::string response = FetchRaw(service_->port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);
  EXPECT_EQ(malformed->value(), before + 1);
}

// The determinism contract, asserted end to end: device-model metrics are a
// pure function of the workload, so running the same query list serially on
// one instance and 8-way concurrently on an identically built instance must
// leave the registries with bit-identical device-model deltas.
TEST(DashboardMetricsDeterminismTest, DeviceMetricsMatchSerialRunExactly) {
  TempDir dir("metrics-determinism-test");
  // A 4 KiB cache budget keeps most of the (compressed) workload on disk
  // so the device model is actually exercised below.
  constexpr uint64_t kTinyBudget = 4096;
  std::unique_ptr<Rased> serial = testing_helpers::MakePopulatedRased(
      env::JoinPath(dir.path(), "serial"), Date::FromYmd(2021, 1, 1),
      Date::FromYmd(2021, 2, 28), 40.0, kTinyBudget);
  std::unique_ptr<Rased> concurrent = testing_helpers::MakePopulatedRased(
      env::JoinPath(dir.path(), "concurrent"), Date::FromYmd(2021, 1, 1),
      Date::FromYmd(2021, 2, 28), 40.0, kTinyBudget);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(concurrent, nullptr);

  std::vector<AnalysisQuery> queries;
  for (int m = 1; m <= 2; ++m) {
    for (int day = 1; day <= 22; day += 3) {
      AnalysisQuery q;
      q.range = DateRange(Date::FromYmd(2021, m, day),
                          Date::FromYmd(2021, m, day + 5));
      q.group_country = true;
      queries.push_back(q);
    }
  }

  struct DeviceCounters {
    std::vector<Counter*> counters;
    Histogram* device_histogram;

    explicit DeviceCounters(MetricsRegistry* metrics) {
      const MetricLabels index_file{{"file", "index"}};
      counters = {
          metrics->GetCounter("rased_pager_page_reads_total", "", index_file),
          metrics->GetCounter("rased_pager_bytes_read_total", "", index_file),
          metrics->GetCounter("rased_pager_read_ops_total", "", index_file),
          metrics->GetCounter("rased_pager_coalesced_pages_total", "",
                              index_file),
          metrics->GetCounter("rased_pager_device_micros_total", "",
                              index_file),
          metrics->GetCounter("rased_cache_hits_total", ""),
          metrics->GetCounter("rased_cache_misses_total", ""),
          metrics->GetCounter("rased_index_cube_reads_total", ""),
          metrics->GetCounter("rased_queries_total", ""),
          metrics->GetCounter("rased_query_cubes_scanned_total", ""),
      };
      device_histogram =
          metrics->GetHistogram("rased_query_device_micros", "");
    }

    std::vector<uint64_t> Values() const {
      std::vector<uint64_t> values;
      for (const Counter* c : counters) values.push_back(c->value());
      for (int i = 0; i <= device_histogram->num_finite_buckets(); ++i) {
        values.push_back(device_histogram->bucket_count(i));
      }
      values.push_back(device_histogram->count());
      values.push_back(static_cast<uint64_t>(device_histogram->sum()));
      return values;
    }
  };

  DeviceCounters serial_handles(serial->metrics());
  DeviceCounters concurrent_handles(concurrent->metrics());
  std::vector<uint64_t> serial_before = serial_handles.Values();
  std::vector<uint64_t> concurrent_before = concurrent_handles.Values();

  // Serial run: the reference accounting.
  for (const AnalysisQuery& q : queries) {
    auto result = serial->Query(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  // Concurrent run: same workload, partitioned over 8 threads so every
  // query executes exactly once in total.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < queries.size();
           i += kThreads) {
        if (!concurrent->Query(queries[i]).ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  std::vector<uint64_t> serial_after = serial_handles.Values();
  std::vector<uint64_t> concurrent_after = concurrent_handles.Values();
  ASSERT_EQ(serial_after.size(), concurrent_after.size());
  for (size_t i = 0; i < serial_after.size(); ++i) {
    EXPECT_EQ(serial_after[i] - serial_before[i],
              concurrent_after[i] - concurrent_before[i])
        << "device-model metric #" << i
        << " diverged between serial and 8-way runs";
  }
  // The workload actually exercised the device model.
  EXPECT_GT(serial_after.back(), serial_before.back());
}

}  // namespace
}  // namespace rased
