#include "dashboard/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rased {
namespace {

/// Minimal test client: one request, returns the raw response.
std::string Fetch(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(HttpServer::UrlDecode("a%20b"), "a b");
  EXPECT_EQ(HttpServer::UrlDecode("a+b"), "a b");
  EXPECT_EQ(HttpServer::UrlDecode("%2Fpath%3D"), "/path=");
  EXPECT_EQ(HttpServer::UrlDecode("plain"), "plain");
  // Malformed escapes pass through.
  EXPECT_EQ(HttpServer::UrlDecode("100%"), "100%");
  EXPECT_EQ(HttpServer::UrlDecode("%zz"), "%zz");
}

TEST(ParseQueryTest, SplitsPairs) {
  auto params = HttpServer::ParseQuery("a=1&b=two%20words&c=");
  EXPECT_EQ(params.size(), 3u);
  EXPECT_EQ(params["a"], "1");
  EXPECT_EQ(params["b"], "two words");
  EXPECT_EQ(params["c"], "");
}

TEST(ParseQueryTest, BareKeyAndEmpty) {
  auto params = HttpServer::ParseQuery("flag&x=1");
  EXPECT_EQ(params.size(), 2u);
  EXPECT_EQ(params.count("flag"), 1u);
  EXPECT_TRUE(HttpServer::ParseQuery("").empty());
}

TEST(HttpServerTest, ServesRoutedPath) {
  HttpServer server;
  server.Route("/hello", [](const HttpRequest& req, HttpResponse* resp) {
    resp->content_type = "text/plain";
    resp->body = "hi " + req.Param("name");
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  std::string response = Fetch(server.port(), "/hello?name=rased");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("hi rased"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, UnknownPathIs404) {
  HttpServer server;
  server.Route("/", [](const HttpRequest&, HttpResponse* resp) {
    resp->body = "{}";
  });
  ASSERT_TRUE(server.Start(0).ok());
  std::string response = Fetch(server.port(), "/nope");
  EXPECT_NE(response.find("404"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, HandlerControlsStatus) {
  HttpServer server;
  server.Route("/bad", [](const HttpRequest&, HttpResponse* resp) {
    resp->status = 400;
    resp->body = "nope";
  });
  ASSERT_TRUE(server.Start(0).ok());
  std::string response = Fetch(server.port(), "/bad");
  EXPECT_NE(response.find("400"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, ServesMultipleSequentialRequests) {
  HttpServer server;
  int hits = 0;
  server.Route("/count", [&hits](const HttpRequest&, HttpResponse* resp) {
    resp->body = std::to_string(++hits);
  });
  ASSERT_TRUE(server.Start(0).ok());
  for (int i = 1; i <= 5; ++i) {
    std::string response = Fetch(server.port(), "/count");
    EXPECT_NE(response.find(std::to_string(i)), std::string::npos);
  }
  server.Stop();
}

TEST(HttpServerTest, ConcurrentClientsAreAllServed) {
  HttpServer server;
  std::atomic<int> handled{0};
  server.Route("/work", [&handled](const HttpRequest&, HttpResponse* resp) {
    resp->body = std::to_string(handled.fetch_add(1));
  });
  ASSERT_TRUE(server.Start(0, /*num_threads=*/4).ok());

  constexpr int kClients = 6;
  constexpr int kRequestsEach = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok] {
      for (int i = 0; i < kRequestsEach; ++i) {
        std::string response = Fetch(server.port(), "/work");
        if (response.find("200 OK") != std::string::npos) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  EXPECT_EQ(ok.load(), kClients * kRequestsEach);
  EXPECT_EQ(handled.load(), kClients * kRequestsEach);
}

TEST(HttpServerTest, StopIsIdempotent) {
  HttpServer server;
  server.Route("/", [](const HttpRequest&, HttpResponse* resp) {
    resp->body = "x";
  });
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace rased
