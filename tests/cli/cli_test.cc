#include "cli/cli.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dashboard/dashboard_service.h"
#include "io/env.h"
#include "test_helpers.h"
#include "util/date.h"

namespace rased {
namespace {

/// Runs the CLI with the given words, capturing stdout.
int RunRased(const std::vector<std::string>& words, std::string* out = nullptr) {
  std::vector<const char*> argv = {"rased"};
  for (const std::string& w : words) argv.push_back(w.c_str());
  ::testing::internal::CaptureStdout();
  int code = RunCli(static_cast<int>(argv.size()), argv.data());
  std::string captured = ::testing::internal::GetCapturedStdout();
  if (out != nullptr) *out = captured;
  return code;
}

class CliTest : public ::testing::Test {
 protected:
  std::string Dir(const std::string& name) {
    return env::JoinPath(dir_.path(), name);
  }

  TempDir dir_{"cli-test"};
};

TEST_F(CliTest, HelpAndUsage) {
  std::string out;
  EXPECT_EQ(RunRased({"help"}, &out), 0);
  EXPECT_NE(out.find("usage: rased"), std::string::npos);
  EXPECT_NE(RunRased({}), 0);
  EXPECT_NE(RunRased({"frobnicate"}), 0);
}

TEST_F(CliTest, InitCreatesSelfDescribingInstance) {
  std::string out;
  EXPECT_EQ(RunRased({"init", "dir=" + Dir("inst"), "schema=bench", "levels=3"},
                &out),
            0);
  EXPECT_NE(out.find("initialized RASED"), std::string::npos);
  EXPECT_TRUE(env::FileExists(env::JoinPath(Dir("inst"), "rased.meta")));

  // stats works on a freshly initialized, empty instance.
  EXPECT_EQ(RunRased({"stats", "dir=" + Dir("inst")}, &out), 0);
  EXPECT_NE(out.find("3 x 64 x 32 x 4"), std::string::npos);
}

TEST_F(CliTest, InitRejectsBadArguments) {
  EXPECT_NE(RunRased({"init"}), 0);
  EXPECT_NE(RunRased({"init", "dir=" + Dir("x"), "schema=galactic"}), 0);
}

TEST_F(CliTest, FullPipelineThroughCli) {
  std::string inst = Dir("pipeline");
  std::string files = Dir("files");
  ASSERT_EQ(RunRased({"init", "dir=" + inst, "schema=bench"}), 0);
  ASSERT_EQ(RunRased({"synth", "dir=" + files, "schema=bench", "from=2021-05-01",
                 "to=2021-05-03", "rate=60"}),
            0);
  for (const char* day : {"2021-05-01", "2021-05-02", "2021-05-03"}) {
    ASSERT_EQ(
        RunRased({"ingest-day", "dir=" + inst, std::string("date=") + day,
             "osc=" + env::JoinPath(files, std::string(day) + ".osc"),
             "changesets=" +
                 env::JoinPath(files, std::string(day) + ".changesets.xml")}),
        0)
        << day;
  }

  std::string out;
  EXPECT_EQ(RunRased({"stats", "dir=" + inst}, &out), 0);
  EXPECT_NE(out.find("3 daily"), std::string::npos);

  EXPECT_EQ(RunRased({"query", "dir=" + inst, "group=country", "format=table"},
                &out),
            0);
  EXPECT_NE(out.find("count"), std::string::npos);
  EXPECT_NE(out.find("United States"), std::string::npos);

  EXPECT_EQ(RunRased({"query", "dir=" + inst, "group=country",
                 "countries=Germany", "format=json"},
                &out),
            0);
  EXPECT_NE(out.find("\"country\":\"Germany\""), std::string::npos);

  EXPECT_EQ(RunRased({"sample", "dir=" + inst, "box=-90,-180,90,180", "n=5"},
                &out),
            0);
  EXPECT_NE(out.find("cs="), std::string::npos);
}

TEST_F(CliTest, MonthlyIngestThroughCli) {
  std::string inst = Dir("monthly");
  std::string files = Dir("monthly-files");
  ASSERT_EQ(RunRased({"init", "dir=" + inst, "schema=bench"}), 0);
  ASSERT_EQ(RunRased({"synth", "dir=" + files, "schema=bench", "from=2021-02-01",
                 "to=2021-02-28", "rate=40"}),
            0);
  for (Date d = Date::FromYmd(2021, 2, 1); d <= Date::FromYmd(2021, 2, 28);
       d = d.next()) {
    ASSERT_EQ(
        RunRased({"ingest-day", "dir=" + inst, "date=" + d.ToString(),
             "osc=" + env::JoinPath(files, d.ToString() + ".osc"),
             "changesets=" +
                 env::JoinPath(files, d.ToString() + ".changesets.xml")}),
        0);
  }
  ASSERT_EQ(
      RunRased({"ingest-month", "dir=" + inst, "month=2021-02-01",
           "history=" + env::JoinPath(files, "2021-02.history.xml"),
           "changesets=" +
               env::JoinPath(files, "2021-02.history-changesets.xml")}),
      0);
  std::string out;
  EXPECT_EQ(RunRased({"query", "dir=" + inst, "group=update_type"}, &out), 0);
  // Four update types after the monthly pass.
  EXPECT_NE(out.find("delete"), std::string::npos);
  EXPECT_NE(out.find("metadata"), std::string::npos);
}

TEST_F(CliTest, SqlQueryThroughCli) {
  std::string inst = Dir("sqlq");
  std::string files = Dir("sqlq-files");
  ASSERT_EQ(RunRased({"init", "dir=" + inst, "schema=bench"}), 0);
  ASSERT_EQ(RunRased({"synth", "dir=" + files, "schema=bench",
                      "from=2021-04-01", "to=2021-04-02", "rate=50"}),
            0);
  for (const char* day : {"2021-04-01", "2021-04-02"}) {
    ASSERT_EQ(
        RunRased({"ingest-day", "dir=" + inst, std::string("date=") + day,
                  "osc=" + env::JoinPath(files, std::string(day) + ".osc"),
                  "changesets=" + env::JoinPath(
                                      files, std::string(day) +
                                                 ".changesets.xml")}),
        0);
  }
  std::string out;
  EXPECT_EQ(RunRased({"query", "dir=" + inst,
                      "sql=SELECT Country, COUNT(*) FROM UpdateList "
                      "WHERE Date BETWEEN 2021-04-01 AND 2021-04-02 "
                      "GROUP BY Country",
                      "format=csv"},
                     &out),
            0);
  EXPECT_NE(out.find("country,count"), std::string::npos);
  EXPECT_NE(RunRased({"query", "dir=" + inst, "sql=SELEKT oops"}), 0);
}

TEST_F(CliTest, ReplicationSyncThroughCli) {
  std::string inst = Dir("sync");
  std::string feed = Dir("sync-feed");
  ASSERT_EQ(RunRased({"init", "dir=" + inst, "schema=bench"}), 0);
  ASSERT_EQ(RunRased({"synth", "publish=" + feed, "schema=bench",
                      "from=2021-06-01", "to=2021-06-03", "rate=40"}),
            0);
  std::string out;
  ASSERT_EQ(RunRased({"sync", "dir=" + inst, "feed=" + feed}, &out), 0);
  // Trailing day held back: 2 of 3 days ingested.
  EXPECT_NE(out.find("2 day(s)"), std::string::npos);
  ASSERT_EQ(RunRased({"sync", "dir=" + inst, "feed=" + feed, "finalize=1"},
                     &out),
            0);
  EXPECT_EQ(RunRased({"stats", "dir=" + inst}, &out), 0);
  EXPECT_NE(out.find("3 daily"), std::string::npos);
}

TEST_F(CliTest, QueryRejectsUnknownCountry) {
  std::string inst = Dir("badquery");
  ASSERT_EQ(RunRased({"init", "dir=" + inst, "schema=bench"}), 0);
  EXPECT_NE(RunRased({"query", "dir=" + inst, "countries=Narnia"}), 0);
}

TEST_F(CliTest, SampleRequiresSelector) {
  std::string inst = Dir("badsample");
  ASSERT_EQ(RunRased({"init", "dir=" + inst, "schema=bench"}), 0);
  EXPECT_NE(RunRased({"sample", "dir=" + inst}), 0);
}

TEST_F(CliTest, OpenMissingInstanceFails) {
  EXPECT_NE(RunRased({"stats", "dir=" + Dir("nonexistent")}), 0);
  EXPECT_NE(RunRased({"query"}), 0);  // no dir at all
}

TEST_F(CliTest, TopRendersOneFrameFromLiveSelfstats) {
  // `top` is a pure HTTP client, so it can poll a service hosted in-process.
  // The default dashboard options start the sampler, whose first sample is
  // synchronous — one frame is renderable immediately.
  auto rased = testing_helpers::MakePopulatedRased(Dir("top-instance"));
  ASSERT_NE(rased, nullptr);
  DashboardService service(rased.get());
  ASSERT_TRUE(service.Start(0).ok());

  std::string out;
  EXPECT_EQ(RunRased({"top", "port=" + std::to_string(service.port()),
                      "window=60", "iterations=1"},
                     &out),
            0);
  EXPECT_NE(out.find("rased top"), std::string::npos) << out;
  EXPECT_NE(out.find("sample(s) retained"), std::string::npos) << out;
  EXPECT_NE(out.find("http"), std::string::npos);
  EXPECT_NE(out.find("sampler"), std::string::npos);
  // The default SLO objectives render with their idle status.
  EXPECT_NE(out.find("query_latency_p99"), std::string::npos) << out;
  EXPECT_NE(out.find("http_error_rate"), std::string::npos) << out;
  // Single-frame mode is scriptable: no ANSI clear sequence.
  EXPECT_EQ(out.find("\x1b["), std::string::npos);
  service.Stop();

  EXPECT_NE(RunRased({"top"}), 0);  // port= is required
}

}  // namespace
}  // namespace rased
