#include "collect/replication.h"

#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"

namespace rased {
namespace {

OsmTimestamp Ts(int day, int sec = 0) {
  return OsmTimestamp{Date::FromYmd(2021, 9, day), sec};
}

TEST(ReplicationStateTest, ParseRealWorldFormat) {
  // The planet server's state.txt escapes colons and carries extra keys.
  auto state = ReplicationState::Parse(
      "#Sat Sep 04 10:30:00 UTC 2021\n"
      "txnMaxQueried=4182406\n"
      "sequenceNumber=4698\n"
      "timestamp=2021-09-04T10\\:30\\:00Z\n");
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state.value().sequence, 4698u);
  EXPECT_EQ(state.value().timestamp.ToString(), "2021-09-04T10:30:00Z");
}

TEST(ReplicationStateTest, FormatRoundTrips) {
  ReplicationState state;
  state.sequence = 42;
  state.timestamp = Ts(4, 3600);
  auto back = ReplicationState::Parse(state.Format());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().sequence, 42u);
  EXPECT_EQ(back.value().timestamp, state.timestamp);
}

TEST(ReplicationStateTest, RejectsGarbage) {
  EXPECT_FALSE(ReplicationState::Parse("no equals here\n").ok());
  EXPECT_FALSE(ReplicationState::Parse("timestamp=2021-09-04T10:30:00Z\n")
                   .ok());  // missing sequenceNumber
}

class ReplicationDirTest : public ::testing::Test {
 protected:
  TempDir dir_{"replication-test"};
};

TEST_F(ReplicationDirTest, PublishAndConsume) {
  ReplicationDirectory feed(env::JoinPath(dir_.path(), "feed"));
  ASSERT_TRUE(feed.Publish(1, "<osmChange/>", Ts(1)).ok());
  ASSERT_TRUE(feed.Publish(2, "<osmChange version=\"0.6\"/>", Ts(2)).ok());

  auto latest = feed.LatestState();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().sequence, 2u);

  auto diff = feed.ReadDiff(1);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value(), "<osmChange/>");

  auto state1 = feed.StateOf(1);
  ASSERT_TRUE(state1.ok());
  EXPECT_EQ(state1.value().timestamp.date, Date::FromYmd(2021, 9, 1));
}

TEST_F(ReplicationDirTest, PublishRejectsRegression) {
  ReplicationDirectory feed(env::JoinPath(dir_.path(), "feed"));
  ASSERT_TRUE(feed.Publish(5, "a", Ts(1)).ok());
  EXPECT_TRUE(feed.Publish(5, "b", Ts(2)).IsInvalidArgument());
  EXPECT_TRUE(feed.Publish(4, "c", Ts(2)).IsInvalidArgument());
  ASSERT_TRUE(feed.Publish(6, "d", Ts(2)).ok());
}

TEST_F(ReplicationDirTest, CursorCatchesUpIncrementally) {
  ReplicationDirectory feed(env::JoinPath(dir_.path(), "feed"));
  ReplicationCursor cursor(env::JoinPath(dir_.path(), "cursor"));
  EXPECT_EQ(cursor.LastApplied().value_or(99), 0u);

  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(feed.Publish(seq, "diff-" + std::to_string(seq),
                             Ts(static_cast<int>(seq)))
                    .ok());
  }

  std::vector<uint64_t> applied;
  auto apply = [&applied](uint64_t seq, const std::string& osc) {
    EXPECT_EQ(osc, "diff-" + std::to_string(seq));
    applied.push_back(seq);
    return Status::OK();
  };
  auto count = cursor.CatchUp(feed, apply);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 3u);
  EXPECT_EQ(applied, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(cursor.LastApplied().value_or(0), 3u);

  // Nothing new: no work.
  applied.clear();
  count = cursor.CatchUp(feed, apply);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 0u);
  EXPECT_TRUE(applied.empty());

  // New sequences resume from the cursor.
  ASSERT_TRUE(feed.Publish(4, "diff-4", Ts(4)).ok());
  count = cursor.CatchUp(feed, apply);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 1u);
  EXPECT_EQ(applied, (std::vector<uint64_t>{4}));
}

TEST_F(ReplicationDirTest, FailedApplyDoesNotAdvanceCursor) {
  ReplicationDirectory feed(env::JoinPath(dir_.path(), "feed"));
  ReplicationCursor cursor(env::JoinPath(dir_.path(), "cursor"));
  ASSERT_TRUE(feed.Publish(1, "one", Ts(1)).ok());
  ASSERT_TRUE(feed.Publish(2, "two", Ts(2)).ok());

  int calls = 0;
  auto flaky = [&calls](uint64_t seq, const std::string&) {
    ++calls;
    if (seq == 2) return Status::IOError("transient");
    return Status::OK();
  };
  EXPECT_FALSE(cursor.CatchUp(feed, flaky).ok());
  EXPECT_EQ(cursor.LastApplied().value_or(0), 1u);  // seq 1 stuck

  // Retry succeeds and replays only the failed sequence.
  auto ok = [](uint64_t, const std::string&) { return Status::OK(); };
  auto count = cursor.CatchUp(feed, ok);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 1u);
  EXPECT_EQ(cursor.LastApplied().value_or(0), 2u);
}

TEST_F(ReplicationDirTest, EmptyFeedIsZeroWork) {
  ReplicationDirectory feed(env::JoinPath(dir_.path(), "nothing"));
  ReplicationCursor cursor(env::JoinPath(dir_.path(), "cursor2"));
  auto count = cursor.CatchUp(
      feed, [](uint64_t, const std::string&) { return Status::OK(); });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 0u);
}

}  // namespace
}  // namespace rased
