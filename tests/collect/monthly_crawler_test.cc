#include "collect/monthly_crawler.h"

#include <gtest/gtest.h>

#include "osm/history.h"

namespace rased {
namespace {

class MonthlyCrawlerTest : public ::testing::Test {
 protected:
  MonthlyCrawlerTest() : world_(305), road_types_(150) {}

  LatLon PointIn(const char* country) {
    return world_.zone(world_.FindByName(country).value()).bounds.Center();
  }

  Element NodeVersion(int64_t id, int32_t version, const char* country,
                      Date date, bool visible = true) {
    LatLon p = PointIn(country);
    Element e;
    e.type = ElementType::kNode;
    e.meta.id = id;
    e.meta.version = version;
    e.meta.visible = visible;
    e.meta.timestamp = OsmTimestamp{date, 0};
    e.meta.changeset = 500 + static_cast<uint64_t>(version);
    e.lat = p.lat;
    e.lon = p.lon;
    return e;
  }

  WorldMap world_;
  RoadTypeTable road_types_;
  ChangesetStore changesets_;
  DateRange april_{Date::FromYmd(2021, 4, 1), Date::FromYmd(2021, 4, 30)};
};

TEST_F(MonthlyCrawlerTest, FirstVersionIsCreate) {
  HistoryWriter history;
  history.Add(NodeVersion(1, 1, "Italy", Date::FromYmd(2021, 4, 5)));
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(
      crawler.CrawlHistory(history.Finish(), changesets_, april_, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].update_type, UpdateType::kNew);
  EXPECT_EQ(out[0].country, world_.FindByName("Italy").value());
}

TEST_F(MonthlyCrawlerTest, GeometryChangeClassified) {
  HistoryWriter history;
  Element v1 = NodeVersion(2, 1, "Spain", Date::FromYmd(2021, 3, 20));
  Element v2 = NodeVersion(2, 2, "Spain", Date::FromYmd(2021, 4, 10));
  v2.lat += 0.001;
  history.Add(v1);
  history.Add(v2);
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(
      crawler.CrawlHistory(history.Finish(), changesets_, april_, &out).ok());
  // Only v2 is inside the window.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].update_type, UpdateType::kGeometry);
}

TEST_F(MonthlyCrawlerTest, MetadataChangeClassified) {
  HistoryWriter history;
  Element v1 = NodeVersion(3, 1, "Poland", Date::FromYmd(2021, 3, 20));
  Element v2 = NodeVersion(3, 2, "Poland", Date::FromYmd(2021, 4, 10));
  v2.tags.push_back(Tag{"name", "ulica"});
  history.Add(v1);
  history.Add(v2);
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(
      crawler.CrawlHistory(history.Finish(), changesets_, april_, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].update_type, UpdateType::kMetadata);
}

TEST_F(MonthlyCrawlerTest, GeometryWinsWhenBothChange) {
  // Section V: geometry takes precedence in classification.
  HistoryWriter history;
  Element v1 = NodeVersion(4, 1, "Chile", Date::FromYmd(2021, 3, 20));
  Element v2 = NodeVersion(4, 2, "Chile", Date::FromYmd(2021, 4, 10));
  v2.lat += 0.001;
  v2.tags.push_back(Tag{"name", "calle"});
  history.Add(v1);
  history.Add(v2);
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(
      crawler.CrawlHistory(history.Finish(), changesets_, april_, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].update_type, UpdateType::kGeometry);
}

TEST_F(MonthlyCrawlerTest, InvisibleVersionIsDelete) {
  HistoryWriter history;
  history.Add(NodeVersion(5, 1, "Egypt", Date::FromYmd(2021, 3, 1)));
  history.Add(
      NodeVersion(5, 2, "Egypt", Date::FromYmd(2021, 4, 2), /*visible=*/false));
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(
      crawler.CrawlHistory(history.Finish(), changesets_, april_, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].update_type, UpdateType::kDelete);
  // Located from the previous version's coordinates.
  EXPECT_EQ(out[0].country, world_.FindByName("Egypt").value());
}

TEST_F(MonthlyCrawlerTest, WayLocatedThroughChangeset) {
  LatLon c = PointIn("Vietnam");
  Changeset cs;
  cs.id = 777;
  cs.has_bbox = true;
  cs.min_lat = c.lat - 0.01;
  cs.max_lat = c.lat + 0.01;
  cs.min_lon = c.lon - 0.01;
  cs.max_lon = c.lon + 0.01;
  changesets_.Add(cs);

  Element way;
  way.type = ElementType::kWay;
  way.meta.id = 6;
  way.meta.version = 1;
  way.meta.timestamp = OsmTimestamp{Date::FromYmd(2021, 4, 15), 0};
  way.meta.changeset = 777;
  way.node_refs = {1, 2, 3};
  way.tags.push_back(Tag{"highway", "primary"});
  HistoryWriter history;
  history.Add(way);

  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(
      crawler.CrawlHistory(history.Finish(), changesets_, april_, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].country, world_.FindByName("Vietnam").value());
  EXPECT_EQ(out[0].road_type, road_types_.Lookup("primary"));
}

TEST_F(MonthlyCrawlerTest, DeletedRoadFallsBackToPreviousTags) {
  Element v1;
  v1.type = ElementType::kWay;
  v1.meta.id = 7;
  v1.meta.version = 1;
  v1.meta.timestamp = OsmTimestamp{Date::FromYmd(2021, 3, 1), 0};
  v1.meta.changeset = 801;
  v1.node_refs = {1, 2};
  v1.tags.push_back(Tag{"highway", "footway"});

  Element v2 = v1;
  v2.meta.version = 2;
  v2.meta.visible = false;
  v2.meta.timestamp = OsmTimestamp{Date::FromYmd(2021, 4, 20), 0};
  v2.tags.clear();
  v2.node_refs.clear();

  HistoryWriter history;
  history.Add(v1);
  history.Add(v2);
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(
      crawler.CrawlHistory(history.Finish(), changesets_, april_, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].update_type, UpdateType::kDelete);
  EXPECT_EQ(out[0].road_type, road_types_.Lookup("footway"));
}

TEST_F(MonthlyCrawlerTest, UnboundedWindowTakesEverything) {
  HistoryWriter history;
  history.Add(NodeVersion(8, 1, "Ghana", Date::FromYmd(2019, 1, 1)));
  history.Add(NodeVersion(9, 1, "Ghana", Date::FromYmd(2021, 4, 1)));
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  DateRange everything(Date::FromYmd(2000, 1, 1), Date::FromYmd(2030, 1, 1));
  ASSERT_TRUE(crawler
                  .CrawlHistory(history.Finish(), changesets_, everything,
                                &out)
                  .ok());
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace rased
