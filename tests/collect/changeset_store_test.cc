#include "collect/changeset_store.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(ChangesetStoreTest, AddAndFind) {
  ChangesetStore store;
  Changeset cs;
  cs.id = 42;
  cs.user = "dan";
  store.Add(cs);
  ASSERT_NE(store.Find(42), nullptr);
  EXPECT_EQ(store.Find(42)->user, "dan");
  EXPECT_EQ(store.Find(43), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ChangesetStoreTest, ReplacesOnDuplicateId) {
  ChangesetStore store;
  Changeset a;
  a.id = 1;
  a.num_changes = 5;
  store.Add(a);
  Changeset b;
  b.id = 1;
  b.num_changes = 50;
  store.Add(b);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Find(1)->num_changes, 50u);
}

TEST(ChangesetStoreTest, AddFromXml) {
  ChangesetStore store;
  Status s = store.AddFromXml(R"(<osm>
    <changeset id="10" created_at="2021-01-01T00:00:00Z"
               min_lat="1" min_lon="2" max_lat="3" max_lon="4"/>
    <changeset id="11" created_at="2021-01-01T01:00:00Z"/>
  </osm>)");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.Find(10), nullptr);
  EXPECT_TRUE(store.Find(10)->has_bbox);
  EXPECT_FALSE(store.Find(11)->has_bbox);
}

TEST(ChangesetStoreTest, AddFromXmlRejectsGarbage) {
  ChangesetStore store;
  EXPECT_FALSE(store.AddFromXml("<osm><changeset/></osm>").ok());
}

TEST(ChangesetStoreTest, Clear) {
  ChangesetStore store;
  Changeset cs;
  cs.id = 1;
  store.Add(cs);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Find(1), nullptr);
}

}  // namespace
}  // namespace rased
