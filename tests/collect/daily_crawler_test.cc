#include "collect/daily_crawler.h"

#include <gtest/gtest.h>

#include "osm/osc.h"

namespace rased {
namespace {

class DailyCrawlerTest : public ::testing::Test {
 protected:
  DailyCrawlerTest() : world_(305), road_types_(150) {}

  Element NodeIn(const char* country, uint64_t changeset,
                 const char* highway = nullptr) {
    ZoneId zone = world_.FindByName(country).value();
    LatLon p = world_.zone(zone).bounds.Center();
    Element e;
    e.type = ElementType::kNode;
    e.meta.id = ++next_id_;
    e.meta.timestamp = OsmTimestamp{Date::FromYmd(2021, 4, 2), 100};
    e.meta.changeset = changeset;
    e.lat = p.lat;
    e.lon = p.lon;
    if (highway != nullptr) e.tags.push_back(Tag{"highway", highway});
    return e;
  }

  Element WayWith(uint64_t changeset, const char* highway) {
    Element e;
    e.type = ElementType::kWay;
    e.meta.id = ++next_id_;
    e.meta.timestamp = OsmTimestamp{Date::FromYmd(2021, 4, 2), 200};
    e.meta.changeset = changeset;
    e.node_refs = {1, 2};
    e.tags.push_back(Tag{"highway", highway});
    return e;
  }

  Changeset BoxAround(const char* country, uint64_t id) {
    ZoneId zone = world_.FindByName(country).value();
    LatLon c = world_.zone(zone).bounds.Center();
    Changeset cs;
    cs.id = id;
    cs.has_bbox = true;
    cs.min_lat = c.lat - 0.01;
    cs.max_lat = c.lat + 0.01;
    cs.min_lon = c.lon - 0.01;
    cs.max_lon = c.lon + 0.01;
    return cs;
  }

  WorldMap world_;
  RoadTypeTable road_types_;
  int64_t next_id_ = 0;
};

TEST_F(DailyCrawlerTest, NodesLocatedByCoordinates) {
  OscWriter osc;
  osc.Add(ChangeAction::kCreate, NodeIn("Germany", 7, "crossing"));
  ChangesetStore changesets;

  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(crawler.CrawlDiff(osc.Finish(), changesets, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].element_type, ElementType::kNode);
  EXPECT_EQ(out[0].date, Date::FromYmd(2021, 4, 2));
  EXPECT_EQ(out[0].country, world_.FindByName("Germany").value());
  EXPECT_EQ(out[0].road_type, road_types_.Lookup("crossing"));
  EXPECT_EQ(out[0].update_type, UpdateType::kNew);
  EXPECT_EQ(out[0].changeset_id, 7u);
  EXPECT_EQ(crawler.stats().located_by_coordinates, 1u);
}

TEST_F(DailyCrawlerTest, WaysLocatedThroughChangesetBBox) {
  OscWriter osc;
  osc.Add(ChangeAction::kModify, WayWith(55, "residential"));
  ChangesetStore changesets;
  changesets.Add(BoxAround("Brazil", 55));

  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(crawler.CrawlDiff(osc.Finish(), changesets, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].country, world_.FindByName("Brazil").value());
  EXPECT_EQ(out[0].update_type, kProvisionalUpdate);
  EXPECT_EQ(crawler.stats().located_by_changeset, 1u);
}

TEST_F(DailyCrawlerTest, MissingChangesetLeavesUnlocated) {
  OscWriter osc;
  osc.Add(ChangeAction::kModify, WayWith(999, "service"));
  ChangesetStore changesets;  // empty

  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(crawler.CrawlDiff(osc.Finish(), changesets, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].country, kZoneUnknown);
  EXPECT_EQ(crawler.stats().unlocated, 1u);
}

TEST_F(DailyCrawlerTest, CreateVersusModifyClassification) {
  OscWriter osc;
  osc.Add(ChangeAction::kCreate, NodeIn("France", 1));
  osc.Add(ChangeAction::kModify, NodeIn("France", 1));
  osc.Add(ChangeAction::kDelete, NodeIn("France", 1));
  ChangesetStore changesets;

  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(crawler.CrawlDiff(osc.Finish(), changesets, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].update_type, UpdateType::kNew);
  // Diffs cannot distinguish modify kinds; both land provisional.
  EXPECT_EQ(out[1].update_type, kProvisionalUpdate);
  EXPECT_EQ(out[2].update_type, kProvisionalUpdate);
}

TEST_F(DailyCrawlerTest, NonRoadElementsKeepNoneRoadType) {
  OscWriter osc;
  osc.Add(ChangeAction::kCreate, NodeIn("India", 3));
  ChangesetStore changesets;

  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(crawler.CrawlDiff(osc.Finish(), changesets, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].road_type, kRoadTypeNone);
}

TEST_F(DailyCrawlerTest, NewHighwayValuesGetInterned) {
  OscWriter osc;
  osc.Add(ChangeAction::kCreate, NodeIn("Japan", 3, "quantum_expressway"));
  ChangesetStore changesets;

  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  ASSERT_TRUE(crawler.CrawlDiff(osc.Finish(), changesets, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(road_types_.Name(out[0].road_type), "quantum_expressway");
}

TEST_F(DailyCrawlerTest, StatsAccumulateAcrossCrawls) {
  ChangesetStore changesets;
  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  for (int i = 0; i < 3; ++i) {
    OscWriter osc;
    osc.Add(ChangeAction::kCreate, NodeIn("Kenya", 3));
    ASSERT_TRUE(crawler.CrawlDiff(osc.Finish(), changesets, &out).ok());
  }
  EXPECT_EQ(crawler.stats().elements_seen, 3u);
  EXPECT_EQ(crawler.stats().records_emitted, 3u);
  EXPECT_EQ(out.size(), 3u);
  crawler.ResetStats();
  EXPECT_EQ(crawler.stats().elements_seen, 0u);
}

TEST_F(DailyCrawlerTest, MalformedDiffFails) {
  ChangesetStore changesets;
  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> out;
  EXPECT_FALSE(crawler.CrawlDiff("<osmChange><create><node/></create>"
                                 "</osmChange>",
                                 changesets, &out)
                   .ok());
}

}  // namespace
}  // namespace rased
