#include "collect/update_list_file.h"

#include <gtest/gtest.h>

#include "io/env.h"
#include "util/random.h"

namespace rased {
namespace {

std::vector<UpdateRecord> MakeRecords(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<UpdateRecord> records;
  for (size_t i = 0; i < n; ++i) {
    UpdateRecord r;
    r.element_type = static_cast<ElementType>(rng.Uniform(3));
    r.date = Date::FromYmd(2021, 1, 1).AddDays(static_cast<int>(i % 28));
    r.country = static_cast<ZoneId>(rng.Uniform(300));
    r.lat = rng.NextDouble() * 90;
    r.lon = rng.NextDouble() * 180;
    r.road_type = static_cast<RoadTypeId>(rng.Uniform(150));
    r.update_type = static_cast<UpdateType>(rng.Uniform(4));
    r.changeset_id = rng.Next();
    records.push_back(r);
  }
  return records;
}

class UpdateListFileTest : public ::testing::Test {
 protected:
  std::string Path() { return env::JoinPath(dir_.path(), "updates.bin"); }
  TempDir dir_{"ulf-test"};
};

TEST_F(UpdateListFileTest, WriteReadRoundTrip) {
  auto records = MakeRecords(1000);
  ASSERT_TRUE(update_list_file::Write(Path(), records).ok());
  auto back = update_list_file::Read(Path());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), records);
}

TEST_F(UpdateListFileTest, EmptyList) {
  ASSERT_TRUE(update_list_file::Write(Path(), {}).ok());
  EXPECT_EQ(update_list_file::Count(Path()).value_or(99), 0u);
  auto back = update_list_file::Read(Path());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST_F(UpdateListFileTest, CountWithoutReadingBody) {
  ASSERT_TRUE(update_list_file::Write(Path(), MakeRecords(4321)).ok());
  EXPECT_EQ(update_list_file::Count(Path()).value_or(0), 4321u);
}

TEST_F(UpdateListFileTest, AppendExtends) {
  ASSERT_TRUE(update_list_file::Write(Path(), MakeRecords(10, 1)).ok());
  ASSERT_TRUE(update_list_file::Append(Path(), MakeRecords(5, 2)).ok());
  EXPECT_EQ(update_list_file::Count(Path()).value_or(0), 15u);
  auto back = update_list_file::Read(Path());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 15u);
  EXPECT_EQ(std::vector<UpdateRecord>(back.value().begin(),
                                      back.value().begin() + 10),
            MakeRecords(10, 1));
}

TEST_F(UpdateListFileTest, AppendCreatesWhenAbsent) {
  ASSERT_TRUE(update_list_file::Append(Path(), MakeRecords(3)).ok());
  EXPECT_EQ(update_list_file::Count(Path()).value_or(0), 3u);
}

TEST_F(UpdateListFileTest, ForEachStreamsInOrder) {
  auto records = MakeRecords(100);
  ASSERT_TRUE(update_list_file::Write(Path(), records).ok());
  size_t i = 0;
  Status s = update_list_file::ForEach(Path(), [&](const UpdateRecord& r) {
    EXPECT_EQ(r, records[i]);
    ++i;
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(i, records.size());
}

TEST_F(UpdateListFileTest, ForEachStopsOnCallbackError) {
  ASSERT_TRUE(update_list_file::Write(Path(), MakeRecords(100)).ok());
  int seen = 0;
  Status s = update_list_file::ForEach(Path(), [&](const UpdateRecord&) {
    return ++seen < 10 ? Status::OK() : Status::Internal("enough");
  });
  EXPECT_TRUE(s.IsInternal());
  EXPECT_EQ(seen, 10);
}

TEST_F(UpdateListFileTest, MissingFileFails) {
  EXPECT_FALSE(update_list_file::Read(Path()).ok());
  EXPECT_FALSE(update_list_file::Count(Path()).ok());
}

TEST_F(UpdateListFileTest, RejectsCorruptMagic) {
  ASSERT_TRUE(env::WriteFile(Path(), "this is not an update list file").ok());
  EXPECT_TRUE(update_list_file::Read(Path()).status().IsCorruption());
}

TEST_F(UpdateListFileTest, RejectsTruncatedBody) {
  ASSERT_TRUE(update_list_file::Write(Path(), MakeRecords(100)).ok());
  auto contents = env::ReadFile(Path());
  ASSERT_TRUE(contents.ok());
  std::string truncated = contents.value().substr(0, 50);
  ASSERT_TRUE(env::WriteFile(Path(), truncated).ok());
  EXPECT_TRUE(update_list_file::Read(Path()).status().IsCorruption());
}

}  // namespace
}  // namespace rased
