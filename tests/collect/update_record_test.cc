#include "collect/update_record.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rased {
namespace {

UpdateRecord Sample() {
  UpdateRecord r;
  r.element_type = ElementType::kWay;
  r.date = Date::FromYmd(2021, 6, 15);
  r.country = 123;
  r.lat = 44.97;
  r.lon = -93.26;
  r.road_type = 8;
  r.update_type = UpdateType::kGeometry;
  r.changeset_id = 9876543210ull;
  return r;
}

TEST(UpdateRecordTest, EncodeDecodeRoundTrip) {
  UpdateRecord r = Sample();
  unsigned char buf[UpdateRecord::kEncodedBytes];
  r.EncodeTo(buf);
  UpdateRecord back = UpdateRecord::DecodeFrom(buf);
  EXPECT_EQ(back, r);
}

TEST(UpdateRecordTest, EncodedSizeIsFixed) {
  EXPECT_EQ(UpdateRecord::kEncodedBytes, 34u);
}

TEST(UpdateRecordTest, RandomizedRoundTripProperty) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    UpdateRecord r;
    r.element_type = static_cast<ElementType>(rng.Uniform(3));
    r.date = Date::FromDays(static_cast<int32_t>(rng.UniformInt(0, 30000)));
    r.country = static_cast<ZoneId>(rng.Uniform(65536));
    r.lat = rng.NextDouble() * 180 - 90;
    r.lon = rng.NextDouble() * 360 - 180;
    r.road_type = static_cast<RoadTypeId>(rng.Uniform(65536));
    r.update_type = static_cast<UpdateType>(rng.Uniform(4));
    r.changeset_id = rng.Next();
    unsigned char buf[UpdateRecord::kEncodedBytes];
    r.EncodeTo(buf);
    ASSERT_EQ(UpdateRecord::DecodeFrom(buf), r);
  }
}

TEST(UpdateRecordTest, UpdateTypeNames) {
  EXPECT_EQ(UpdateTypeName(UpdateType::kNew), "new");
  EXPECT_EQ(UpdateTypeName(UpdateType::kDelete), "delete");
  EXPECT_EQ(UpdateTypeName(UpdateType::kGeometry), "geometry");
  EXPECT_EQ(UpdateTypeName(UpdateType::kMetadata), "metadata");
}

TEST(UpdateRecordTest, ProvisionalSlotIsGeometry) {
  // The daily crawler's "updated" records land in the geometry slot until
  // the monthly rebuild (see UpdateType documentation).
  EXPECT_EQ(kProvisionalUpdate, UpdateType::kGeometry);
}

TEST(UpdateRecordTest, ToStringMentionsKeyFields) {
  std::string s = Sample().ToString();
  EXPECT_NE(s.find("way"), std::string::npos);
  EXPECT_NE(s.find("2021-06-15"), std::string::npos);
  EXPECT_NE(s.find("9876543210"), std::string::npos);
}

}  // namespace
}  // namespace rased
