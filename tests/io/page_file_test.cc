#include "io/page_file.h"

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"

namespace rased {
namespace {

class PageFileTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name = "pages") {
    return env::JoinPath(dir_.path(), name);
  }

  TempDir dir_{"pagefile-test"};
};

TEST_F(PageFileTest, CreateWriteReadRoundTrip) {
  auto file = PageFile::Create(Path(), 256);
  ASSERT_TRUE(file.ok());
  auto& pf = *file.value();
  EXPECT_EQ(pf.page_size(), 256u);
  EXPECT_EQ(pf.payload_size(), 252u);
  EXPECT_EQ(pf.num_pages(), 0u);

  auto page = pf.AllocatePage();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value(), 1u);

  std::string payload = "cube payload";
  ASSERT_TRUE(pf.WritePage(page.value(), payload.data(), payload.size()).ok());

  std::vector<char> buf(pf.payload_size());
  ASSERT_TRUE(pf.ReadPage(page.value(), buf.data()).ok());
  EXPECT_EQ(std::string(buf.data(), payload.size()), payload);
  // The rest is zero-filled.
  for (size_t i = payload.size(); i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], 0) << i;
  }
}

TEST_F(PageFileTest, CreateFailsIfExists) {
  ASSERT_TRUE(PageFile::Create(Path(), 256).ok());
  EXPECT_FALSE(PageFile::Create(Path(), 256).ok());
}

TEST_F(PageFileTest, OpenMissingFails) {
  EXPECT_FALSE(PageFile::Open(Path("absent")).ok());
}

TEST_F(PageFileTest, RejectsTinyPageSize) {
  auto file = PageFile::Create(Path(), 16);
  EXPECT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsInvalidArgument());
}

TEST_F(PageFileTest, PersistsAcrossReopen) {
  {
    auto file = PageFile::Create(Path(), 128);
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 5; ++i) {
      auto page = file.value()->AllocatePage();
      ASSERT_TRUE(page.ok());
      std::string payload = "page-" + std::to_string(i);
      ASSERT_TRUE(file.value()
                      ->WritePage(page.value(), payload.data(), payload.size())
                      .ok());
    }
  }  // destructor syncs
  auto reopened = PageFile::Open(Path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->page_size(), 128u);
  EXPECT_EQ(reopened.value()->num_pages(), 5u);
  std::vector<char> buf(reopened.value()->payload_size());
  ASSERT_TRUE(reopened.value()->ReadPage(3, buf.data()).ok());
  EXPECT_EQ(std::string(buf.data(), 6), "page-2");
}

TEST_F(PageFileTest, OutOfRangePageRejected) {
  auto file = PageFile::Create(Path(), 128);
  ASSERT_TRUE(file.ok());
  std::vector<char> buf(file.value()->payload_size());
  EXPECT_TRUE(file.value()->ReadPage(1, buf.data()).IsOutOfRange());
  EXPECT_TRUE(file.value()->ReadPage(kInvalidPageId, buf.data()).IsOutOfRange());
  EXPECT_TRUE(file.value()->WritePage(7, "x", 1).IsOutOfRange());
}

TEST_F(PageFileTest, OversizedPayloadRejected) {
  auto file = PageFile::Create(Path(), 128);
  ASSERT_TRUE(file.ok());
  auto page = file.value()->AllocatePage();
  ASSERT_TRUE(page.ok());
  std::string big(file.value()->payload_size() + 1, 'x');
  EXPECT_TRUE(file.value()
                  ->WritePage(page.value(), big.data(), big.size())
                  .IsInvalidArgument());
}

TEST_F(PageFileTest, DetectsCorruptedPage) {
  PageId page;
  {
    auto file = PageFile::Create(Path(), 128);
    ASSERT_TRUE(file.ok());
    auto p = file.value()->AllocatePage();
    ASSERT_TRUE(p.ok());
    page = p.value();
    ASSERT_TRUE(file.value()->WritePage(page, "good data", 9).ok());
  }
  // Flip a byte in the page body on disk.
  {
    std::fstream f(Path(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(page * 128 + 3));
    char evil = 'X';
    f.write(&evil, 1);
  }
  auto file = PageFile::Open(Path());
  ASSERT_TRUE(file.ok());
  std::vector<char> buf(file.value()->payload_size());
  EXPECT_TRUE(file.value()->ReadPage(page, buf.data()).IsCorruption());
}

TEST_F(PageFileTest, DetectsCorruptedHeader) {
  { ASSERT_TRUE(PageFile::Create(Path(), 128).ok()); }
  {
    std::fstream f(Path(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(9);
    char evil = 0x7f;
    f.write(&evil, 1);
  }
  EXPECT_FALSE(PageFile::Open(Path()).ok());
}

TEST_F(PageFileTest, ReadPagesReturnsAdjacentRunWithChecksums) {
  auto file = PageFile::Create(Path(), 128);
  ASSERT_TRUE(file.ok());
  auto& pf = *file.value();
  for (int i = 0; i < 4; ++i) {
    auto page = pf.AllocatePage();
    ASSERT_TRUE(page.ok());
    std::string payload = "run-" + std::to_string(i);
    ASSERT_TRUE(pf.WritePage(page.value(), payload.data(), payload.size()).ok());
  }

  // Raw page images (checksum trailers included) at page_size() stride.
  std::vector<unsigned char> pages(3 * pf.page_size());
  ASSERT_TRUE(pf.ReadPages(2, 3, pages.data()).ok());
  for (int i = 0; i < 3; ++i) {
    std::string expect = "run-" + std::to_string(i + 1);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(
                              pages.data() + static_cast<size_t>(i) * 128),
                          expect.size()),
              expect);
  }
}

TEST_F(PageFileTest, ReadPagesRejectsOutOfRangeRun) {
  auto file = PageFile::Create(Path(), 128);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->AllocatePage().ok());
  std::vector<unsigned char> pages(2 * file.value()->page_size());
  // Run extends past the last allocated page.
  EXPECT_TRUE(file.value()->ReadPages(1, 2, pages.data()).IsOutOfRange());
  EXPECT_TRUE(
      file.value()->ReadPages(kInvalidPageId, 1, pages.data()).IsOutOfRange());
  // Empty run is a no-op.
  EXPECT_TRUE(file.value()->ReadPages(1, 0, pages.data()).ok());
}

TEST_F(PageFileTest, ReadPagesDetectsCorruptionAnywhereInRun) {
  PageId first;
  {
    auto file = PageFile::Create(Path(), 128);
    ASSERT_TRUE(file.ok());
    auto p1 = file.value()->AllocatePage();
    ASSERT_TRUE(p1.ok());
    first = p1.value();
    auto p2 = file.value()->AllocatePage();
    ASSERT_TRUE(p2.ok());
    ASSERT_TRUE(file.value()->WritePage(first, "one", 3).ok());
    ASSERT_TRUE(file.value()->WritePage(p2.value(), "two", 3).ok());
  }
  // Corrupt the *second* page of the run.
  {
    std::fstream f(Path(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>((first + 1) * 128 + 1));
    char evil = 'X';
    f.write(&evil, 1);
  }
  auto file = PageFile::Open(Path());
  ASSERT_TRUE(file.ok());
  std::vector<unsigned char> pages(2 * file.value()->page_size());
  EXPECT_TRUE(file.value()->ReadPages(first, 2, pages.data()).IsCorruption());
}

TEST_F(PageFileTest, FreshPageReadsAsZeros) {
  auto file = PageFile::Create(Path(), 128);
  ASSERT_TRUE(file.ok());
  auto page = file.value()->AllocatePage();
  ASSERT_TRUE(page.ok());
  std::vector<char> buf(file.value()->payload_size(), 'x');
  ASSERT_TRUE(file.value()->ReadPage(page.value(), buf.data()).ok());
  for (char c : buf) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace rased
