#include "io/pager.h"

#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"

namespace rased {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  std::string Path() { return env::JoinPath(dir_.path(), "pages"); }

  TempDir dir_{"pager-test"};
};

TEST_F(PagerTest, CountsReadsAndWrites) {
  DeviceModel device{1000, 2000, 0.0};
  auto pager = Pager::Create(Path(), 256, device);
  ASSERT_TRUE(pager.ok());
  Pager& p = *pager.value();

  auto page = p.AllocatePage();  // 1 write
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(p.WritePage(page.value(), "abc", 3).ok());  // 1 write

  std::vector<char> buf(p.payload_size());
  ASSERT_TRUE(p.ReadPage(page.value(), buf.data()).ok());  // 1 read
  ASSERT_TRUE(p.ReadPage(page.value(), buf.data()).ok());  // 1 read

  const IoStats& stats = p.stats();
  EXPECT_EQ(stats.page_writes, 2u);
  EXPECT_EQ(stats.page_reads, 2u);
  EXPECT_EQ(stats.bytes_read, 2 * 256u);
  EXPECT_EQ(stats.bytes_written, 2 * 256u);
  // 2 writes * 2000us + 2 reads * 1000us.
  EXPECT_EQ(stats.simulated_device_micros, 2 * 2000 + 2 * 1000);
}

TEST_F(PagerTest, PerByteThroughputCharge) {
  DeviceModel device{0, 0, 1.0};  // 1 us per byte
  auto pager = Pager::Create(Path(), 512, device);
  ASSERT_TRUE(pager.ok());
  auto page = pager.value()->AllocatePage();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(pager.value()->stats().simulated_device_micros, 512);
}

TEST_F(PagerTest, NoDeviceModelChargesNothing) {
  auto pager = Pager::Create(Path(), 256, DeviceModel::None());
  ASSERT_TRUE(pager.ok());
  auto page = pager.value()->AllocatePage();
  ASSERT_TRUE(page.ok());
  std::vector<char> buf(pager.value()->payload_size());
  ASSERT_TRUE(pager.value()->ReadPage(page.value(), buf.data()).ok());
  EXPECT_EQ(pager.value()->stats().simulated_device_micros, 0);
  EXPECT_EQ(pager.value()->stats().page_reads, 1u);
}

TEST_F(PagerTest, ResetStats) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{});
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE(pager.value()->AllocatePage().ok());
  pager.value()->ResetStats();
  EXPECT_EQ(pager.value()->stats().page_writes, 0u);
  EXPECT_EQ(pager.value()->stats().simulated_device_micros, 0);
}

TEST_F(PagerTest, StatsDeltaArithmetic) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{100, 100, 0.0});
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE(pager.value()->AllocatePage().ok());
  IoStats before = pager.value()->stats();
  ASSERT_TRUE(pager.value()->AllocatePage().ok());
  ASSERT_TRUE(pager.value()->AllocatePage().ok());
  IoStats delta = pager.value()->stats() - before;
  EXPECT_EQ(delta.page_writes, 2u);
  EXPECT_EQ(delta.simulated_device_micros, 200);

  IoStats sum;
  sum += delta;
  sum += delta;
  EXPECT_EQ(sum.page_writes, 4u);
}

class PagerBatchTest : public PagerTest {
 protected:
  // A pager with 8 allocated pages; page i holds payload byte ('a' + i).
  void Fill(Pager& p, size_t pages) {
    for (size_t i = 0; i < pages; ++i) {
      auto page = p.AllocatePage();
      ASSERT_TRUE(page.ok());
      char c = static_cast<char>('a' + static_cast<char>(i));
      ASSERT_TRUE(p.WritePage(page.value(), &c, 1).ok());
    }
    p.ResetStats();
  }

  char PayloadByte(const std::vector<unsigned char>& buf, const Pager& p,
                   size_t slot) {
    return static_cast<char>(buf[slot * p.payload_size()]);
  }
};

TEST_F(PagerBatchTest, AdjacentRunCoalescesIntoOneOp) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{1000, 0, 0.0});
  ASSERT_TRUE(pager.ok());
  Pager& p = *pager.value();
  Fill(p, 8);

  std::vector<PageId> ids{1, 2, 3, 4};
  std::vector<unsigned char> buf(ids.size() * p.payload_size());
  IoStats io;
  ASSERT_TRUE(p.ReadPages(ids, buf.data(), &io).ok());

  // Transfers are per page, the seek is per run: one op, one latency.
  EXPECT_EQ(io.page_reads, 4u);
  EXPECT_EQ(io.bytes_read, 4 * 256u);
  EXPECT_EQ(io.read_ops, 1u);
  EXPECT_EQ(io.simulated_device_micros, 1000);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(PayloadByte(buf, p, i), static_cast<char>('a' + i));
  }
  // Global counters agree with the per-call accounting.
  EXPECT_EQ(p.stats(), io);
}

TEST_F(PagerBatchTest, UnsortedInputIsSortedButDeliveredInInputOrder) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{1000, 0, 0.0});
  ASSERT_TRUE(pager.ok());
  Pager& p = *pager.value();
  Fill(p, 8);

  // Input order scrambled; ids 2,3,4,5 are physically adjacent.
  std::vector<PageId> ids{5, 2, 4, 3};
  std::vector<unsigned char> buf(ids.size() * p.payload_size());
  IoStats io;
  ASSERT_TRUE(p.ReadPages(ids, buf.data(), &io).ok());

  EXPECT_EQ(io.read_ops, 1u);
  EXPECT_EQ(io.page_reads, 4u);
  // Payload slots follow the *input* order, not the sorted order.
  EXPECT_EQ(PayloadByte(buf, p, 0), 'e');
  EXPECT_EQ(PayloadByte(buf, p, 1), 'b');
  EXPECT_EQ(PayloadByte(buf, p, 2), 'd');
  EXPECT_EQ(PayloadByte(buf, p, 3), 'c');
}

TEST_F(PagerBatchTest, GapsSplitRuns) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{1000, 0, 0.0});
  ASSERT_TRUE(pager.ok());
  Pager& p = *pager.value();
  Fill(p, 8);

  // {1,2} | {4} | {6,7}: three runs.
  std::vector<PageId> ids{6, 1, 4, 7, 2};
  std::vector<unsigned char> buf(ids.size() * p.payload_size());
  IoStats io;
  ASSERT_TRUE(p.ReadPages(ids, buf.data(), &io).ok());

  EXPECT_EQ(io.read_ops, 3u);
  EXPECT_EQ(io.page_reads, 5u);
  EXPECT_EQ(io.simulated_device_micros, 3 * 1000);
  EXPECT_EQ(PayloadByte(buf, p, 0), 'f');
  EXPECT_EQ(PayloadByte(buf, p, 1), 'a');
  EXPECT_EQ(PayloadByte(buf, p, 2), 'd');
  EXPECT_EQ(PayloadByte(buf, p, 3), 'g');
  EXPECT_EQ(PayloadByte(buf, p, 4), 'b');
}

TEST_F(PagerBatchTest, DuplicateIdsAreReReadAndBreakRuns) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{1000, 0, 0.0});
  ASSERT_TRUE(pager.ok());
  Pager& p = *pager.value();
  Fill(p, 8);

  // Sorted: 3,3,4 -> runs {3}, {3,4}: the duplicate is its own transfer,
  // keeping the charge a pure function of the id multiset.
  std::vector<PageId> ids{3, 4, 3};
  std::vector<unsigned char> buf(ids.size() * p.payload_size());
  IoStats io;
  ASSERT_TRUE(p.ReadPages(ids, buf.data(), &io).ok());

  EXPECT_EQ(io.page_reads, 3u);
  EXPECT_EQ(io.read_ops, 2u);
  EXPECT_EQ(PayloadByte(buf, p, 0), 'c');
  EXPECT_EQ(PayloadByte(buf, p, 1), 'd');
  EXPECT_EQ(PayloadByte(buf, p, 2), 'c');
}

TEST_F(PagerBatchTest, AccountingMatchesSerialTransferForTransfer) {
  DeviceModel device{1000, 0, 0.5};
  auto pager = Pager::Create(Path(), 256, device);
  ASSERT_TRUE(pager.ok());
  Pager& p = *pager.value();
  Fill(p, 8);

  std::vector<PageId> ids{7, 1, 2, 3, 5};
  std::vector<unsigned char> batch_buf(ids.size() * p.payload_size());
  IoStats batched;
  ASSERT_TRUE(p.ReadPages(ids, batch_buf.data(), &batched).ok());

  IoStats serial;
  std::vector<unsigned char> one(p.payload_size());
  for (PageId id : ids) {
    ASSERT_TRUE(p.ReadPage(id, one.data(), &serial).ok());
  }

  // Identical transfer counts; fewer ops and less simulated time.
  EXPECT_EQ(batched.page_reads, serial.page_reads);
  EXPECT_EQ(batched.bytes_read, serial.bytes_read);
  EXPECT_LT(batched.read_ops, serial.read_ops);
  EXPECT_LT(batched.simulated_device_micros, serial.simulated_device_micros);
}

TEST_F(PagerBatchTest, EmptyBatchIsFree) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{1000, 0, 0.0});
  ASSERT_TRUE(pager.ok());
  Fill(*pager.value(), 2);
  IoStats io;
  ASSERT_TRUE(
      pager.value()->ReadPages(std::span<const PageId>{}, nullptr, &io).ok());
  EXPECT_EQ(io, IoStats{});
}

TEST_F(PagerBatchTest, OutOfRangePageFailsBatch) {
  auto pager = Pager::Create(Path(), 256, DeviceModel::None());
  ASSERT_TRUE(pager.ok());
  Pager& p = *pager.value();
  Fill(p, 2);
  std::vector<PageId> ids{1, 99};
  std::vector<unsigned char> buf(ids.size() * p.payload_size());
  EXPECT_FALSE(p.ReadPages(ids, buf.data()).ok());
}

TEST_F(PagerTest, ReopenSeesData) {
  {
    auto pager = Pager::Create(Path(), 256, DeviceModel::None());
    ASSERT_TRUE(pager.ok());
    auto page = pager.value()->AllocatePage();
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pager.value()->WritePage(page.value(), "persist", 7).ok());
  }
  auto pager = Pager::Open(Path(), DeviceModel::None());
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ(pager.value()->num_pages(), 1u);
  std::vector<char> buf(pager.value()->payload_size());
  ASSERT_TRUE(pager.value()->ReadPage(1, buf.data()).ok());
  EXPECT_EQ(std::string(buf.data(), 7), "persist");
}

}  // namespace
}  // namespace rased
