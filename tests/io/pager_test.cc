#include "io/pager.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"

namespace rased {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  std::string Path() { return env::JoinPath(dir_.path(), "pages"); }

  TempDir dir_{"pager-test"};
};

TEST_F(PagerTest, CountsReadsAndWrites) {
  DeviceModel device{1000, 2000, 0.0};
  auto pager = Pager::Create(Path(), 256, device);
  ASSERT_TRUE(pager.ok());
  Pager& p = *pager.value();

  auto page = p.AllocatePage();  // 1 write
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(p.WritePage(page.value(), "abc", 3).ok());  // 1 write

  std::vector<char> buf(p.payload_size());
  ASSERT_TRUE(p.ReadPage(page.value(), buf.data()).ok());  // 1 read
  ASSERT_TRUE(p.ReadPage(page.value(), buf.data()).ok());  // 1 read

  const IoStats& stats = p.stats();
  EXPECT_EQ(stats.page_writes, 2u);
  EXPECT_EQ(stats.page_reads, 2u);
  EXPECT_EQ(stats.bytes_read, 2 * 256u);
  EXPECT_EQ(stats.bytes_written, 2 * 256u);
  // 2 writes * 2000us + 2 reads * 1000us.
  EXPECT_EQ(stats.simulated_device_micros, 2 * 2000 + 2 * 1000);
}

TEST_F(PagerTest, PerByteThroughputCharge) {
  DeviceModel device{0, 0, 1.0};  // 1 us per byte
  auto pager = Pager::Create(Path(), 512, device);
  ASSERT_TRUE(pager.ok());
  auto page = pager.value()->AllocatePage();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(pager.value()->stats().simulated_device_micros, 512);
}

TEST_F(PagerTest, NoDeviceModelChargesNothing) {
  auto pager = Pager::Create(Path(), 256, DeviceModel::None());
  ASSERT_TRUE(pager.ok());
  auto page = pager.value()->AllocatePage();
  ASSERT_TRUE(page.ok());
  std::vector<char> buf(pager.value()->payload_size());
  ASSERT_TRUE(pager.value()->ReadPage(page.value(), buf.data()).ok());
  EXPECT_EQ(pager.value()->stats().simulated_device_micros, 0);
  EXPECT_EQ(pager.value()->stats().page_reads, 1u);
}

TEST_F(PagerTest, ResetStats) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{});
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE(pager.value()->AllocatePage().ok());
  pager.value()->ResetStats();
  EXPECT_EQ(pager.value()->stats().page_writes, 0u);
  EXPECT_EQ(pager.value()->stats().simulated_device_micros, 0);
}

TEST_F(PagerTest, StatsDeltaArithmetic) {
  auto pager = Pager::Create(Path(), 256, DeviceModel{100, 100, 0.0});
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE(pager.value()->AllocatePage().ok());
  IoStats before = pager.value()->stats();
  ASSERT_TRUE(pager.value()->AllocatePage().ok());
  ASSERT_TRUE(pager.value()->AllocatePage().ok());
  IoStats delta = pager.value()->stats() - before;
  EXPECT_EQ(delta.page_writes, 2u);
  EXPECT_EQ(delta.simulated_device_micros, 200);

  IoStats sum;
  sum += delta;
  sum += delta;
  EXPECT_EQ(sum.page_writes, 4u);
}

TEST_F(PagerTest, ReopenSeesData) {
  {
    auto pager = Pager::Create(Path(), 256, DeviceModel::None());
    ASSERT_TRUE(pager.ok());
    auto page = pager.value()->AllocatePage();
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pager.value()->WritePage(page.value(), "persist", 7).ok());
  }
  auto pager = Pager::Open(Path(), DeviceModel::None());
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ(pager.value()->num_pages(), 1u);
  std::vector<char> buf(pager.value()->payload_size());
  ASSERT_TRUE(pager.value()->ReadPage(1, buf.data()).ok());
  EXPECT_EQ(std::string(buf.data(), 7), "persist");
}

}  // namespace
}  // namespace rased
