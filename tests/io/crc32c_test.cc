#include "io/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 (iSCSI) CRC32C test vectors.
  unsigned char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);

  unsigned char ones[32];
  for (auto& b : ones) b = 0xff;
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62a8ab43u);

  unsigned char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46dd794eu);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, SensitiveToSingleBitFlip) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t base = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base) << "byte " << i;
  }
}

TEST(Crc32cTest, SeedChaining) {
  // CRC over "ab" equals CRC over "b" seeded with CRC("a").
  uint32_t a = Crc32c("a", 1);
  uint32_t ab_direct = Crc32c("ab", 2);
  uint32_t ab_chained = Crc32c("b", 1, a);
  EXPECT_EQ(ab_direct, ab_chained);
}

TEST(Crc32cTest, Deterministic) {
  std::string data(4096, 'x');
  EXPECT_EQ(Crc32c(data.data(), data.size()),
            Crc32c(data.data(), data.size()));
}

}  // namespace
}  // namespace rased
