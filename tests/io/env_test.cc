#include "io/env.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace rased {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  TempDir dir_{"env-test"};
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  std::string path = env::JoinPath(dir_.path(), "f.txt");
  ASSERT_TRUE(env::WriteFile(path, "hello world").ok());
  auto contents = env::ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "hello world");
}

TEST_F(EnvTest, WriteTruncatesExisting) {
  std::string path = env::JoinPath(dir_.path(), "f.txt");
  ASSERT_TRUE(env::WriteFile(path, "long old contents").ok());
  ASSERT_TRUE(env::WriteFile(path, "new").ok());
  EXPECT_EQ(env::ReadFile(path).value_or(""), "new");
}

TEST_F(EnvTest, AppendConcatenates) {
  std::string path = env::JoinPath(dir_.path(), "log.txt");
  ASSERT_TRUE(env::AppendFile(path, "a").ok());
  ASSERT_TRUE(env::AppendFile(path, "b").ok());
  EXPECT_EQ(env::ReadFile(path).value_or(""), "ab");
}

TEST_F(EnvTest, BinaryContentsSurvive) {
  std::string path = env::JoinPath(dir_.path(), "bin");
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  ASSERT_TRUE(env::WriteFile(path, data).ok());
  EXPECT_EQ(env::ReadFile(path).value_or(""), data);
}

TEST_F(EnvTest, ReadMissingFileFails) {
  EXPECT_FALSE(env::ReadFile(env::JoinPath(dir_.path(), "no")).ok());
}

TEST_F(EnvTest, FileExistsAndSize) {
  std::string path = env::JoinPath(dir_.path(), "sized");
  EXPECT_FALSE(env::FileExists(path));
  ASSERT_TRUE(env::WriteFile(path, "12345").ok());
  EXPECT_TRUE(env::FileExists(path));
  EXPECT_EQ(env::FileSize(path).value_or(0), 5u);
  EXPECT_FALSE(env::FileSize(env::JoinPath(dir_.path(), "no")).ok());
}

TEST_F(EnvTest, CreateDirsNested) {
  std::string nested = env::JoinPath(dir_.path(), "a/b/c");
  ASSERT_TRUE(env::CreateDirs(nested).ok());
  EXPECT_TRUE(env::FileExists(nested));
  // Idempotent.
  EXPECT_TRUE(env::CreateDirs(nested).ok());
}

TEST_F(EnvTest, ListDirSorted) {
  ASSERT_TRUE(env::WriteFile(env::JoinPath(dir_.path(), "b.txt"), "").ok());
  ASSERT_TRUE(env::WriteFile(env::JoinPath(dir_.path(), "a.txt"), "").ok());
  ASSERT_TRUE(env::CreateDirs(env::JoinPath(dir_.path(), "c")).ok());
  auto names = env::ListDir(dir_.path());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"a.txt", "b.txt", "c"}));
}

TEST_F(EnvTest, RemoveAllIsRecursiveAndIdempotent) {
  std::string sub = env::JoinPath(dir_.path(), "sub");
  ASSERT_TRUE(env::CreateDirs(env::JoinPath(sub, "deep")).ok());
  ASSERT_TRUE(env::WriteFile(env::JoinPath(sub, "deep/f"), "x").ok());
  ASSERT_TRUE(env::RemoveAll(sub).ok());
  EXPECT_FALSE(env::FileExists(sub));
  EXPECT_TRUE(env::RemoveAll(sub).ok());  // no-op
}

TEST_F(EnvTest, JoinPathHandlesSlashes) {
  EXPECT_EQ(env::JoinPath("a", "b"), "a/b");
  EXPECT_EQ(env::JoinPath("a/", "b"), "a/b");
  EXPECT_EQ(env::JoinPath("a", "/b"), "a/b");
  EXPECT_EQ(env::JoinPath("a/", "/b"), "a/b");
  EXPECT_EQ(env::JoinPath("", "b"), "b");
  EXPECT_EQ(env::JoinPath("a", ""), "a");
}

TEST(TempDirTest, CreatesAndCleansUp) {
  std::string path;
  {
    TempDir t("scoped");
    ASSERT_TRUE(t.valid());
    path = t.path();
    EXPECT_TRUE(env::FileExists(path));
    ASSERT_TRUE(env::WriteFile(env::JoinPath(path, "x"), "1").ok());
  }
  EXPECT_FALSE(env::FileExists(path));
}

TEST(TempDirTest, DistinctDirectories) {
  TempDir a("dup"), b("dup");
  EXPECT_NE(a.path(), b.path());
}

}  // namespace
}  // namespace rased
