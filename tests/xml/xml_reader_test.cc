#include "xml/xml_reader.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

// Drains all events into a compact trace string for easy assertions:
// "S:name" start, "E:name" end, "T:text" text, "$" eof.
std::string Trace(std::string_view xml) {
  XmlReader reader(xml);
  std::string trace;
  for (;;) {
    auto ev = reader.Next();
    if (!ev.ok()) return "ERROR:" + ev.status().ToString();
    switch (ev.value()) {
      case XmlEvent::kStartElement:
        trace += "S:" + reader.name() + ";";
        break;
      case XmlEvent::kEndElement:
        trace += "E:" + reader.name() + ";";
        break;
      case XmlEvent::kText:
        trace += "T:" + reader.text() + ";";
        break;
      case XmlEvent::kEof:
        trace += "$";
        return trace;
    }
  }
}

TEST(XmlReaderTest, SimpleElement) {
  EXPECT_EQ(Trace("<a></a>"), "S:a;E:a;$");
}

TEST(XmlReaderTest, SelfClosingSynthesizesEnd) {
  EXPECT_EQ(Trace("<a/>"), "S:a;E:a;$");
  EXPECT_EQ(Trace("<a><b/><c/></a>"), "S:a;S:b;E:b;S:c;E:c;E:a;$");
}

TEST(XmlReaderTest, NestedElements) {
  EXPECT_EQ(Trace("<a><b><c/></b></a>"), "S:a;S:b;S:c;E:c;E:b;E:a;$");
}

TEST(XmlReaderTest, TextContent) {
  EXPECT_EQ(Trace("<a>hello</a>"), "S:a;T:hello;E:a;$");
}

TEST(XmlReaderTest, IgnorableWhitespaceSkipped) {
  EXPECT_EQ(Trace("<a>\n  <b/>\n</a>"), "S:a;S:b;E:b;E:a;$");
}

TEST(XmlReaderTest, DeclarationAndCommentsSkipped) {
  EXPECT_EQ(Trace("<?xml version=\"1.0\"?><!-- note --><a/>"), "S:a;E:a;$");
  EXPECT_EQ(Trace("<a><!-- <b/> not real --></a>"), "S:a;E:a;$");
}

TEST(XmlReaderTest, DoctypeSkipped) {
  EXPECT_EQ(Trace("<!DOCTYPE osm><a/>"), "S:a;E:a;$");
}

TEST(XmlReaderTest, Attributes) {
  XmlReader reader("<node id=\"42\" lat=\"1.5\" lon='-2.25'/>");
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_EQ(reader.name(), "node");
  ASSERT_EQ(reader.attributes().size(), 3u);
  ASSERT_NE(reader.FindAttr("id"), nullptr);
  EXPECT_EQ(*reader.FindAttr("id"), "42");
  EXPECT_EQ(*reader.FindAttr("lat"), "1.5");
  EXPECT_EQ(*reader.FindAttr("lon"), "-2.25");
  EXPECT_EQ(reader.FindAttr("missing"), nullptr);
}

TEST(XmlReaderTest, EntityDecodingInAttributesAndText) {
  XmlReader reader("<tag v=\"a &amp; b &lt;&gt; &quot;&apos;\">x &amp; y</tag>");
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_EQ(*reader.FindAttr("v"), "a & b <> \"'");
  auto ev = reader.Next();
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev.value(), XmlEvent::kText);
  EXPECT_EQ(reader.text(), "x & y");
}

TEST(XmlReaderTest, NumericCharacterReferences) {
  XmlReader reader("<t v=\"&#65;&#x42;&#xe9;\"/>");
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_EQ(*reader.FindAttr("v"), "AB\xc3\xa9");  // A, B, e-acute (UTF-8)
}

TEST(XmlReaderTest, RejectsUnknownEntity) {
  EXPECT_NE(Trace("<a>&bogus;</a>").find("ERROR"), std::string::npos);
}

TEST(XmlReaderTest, RejectsMismatchedTags) {
  EXPECT_NE(Trace("<a></b>").find("ERROR"), std::string::npos) << "note: "
      << "well-formedness by nesting depth only";
}

TEST(XmlReaderTest, RejectsUnterminatedInput) {
  EXPECT_NE(Trace("<a><b>").find("ERROR"), std::string::npos);
  EXPECT_NE(Trace("<a attr=\"x").find("ERROR"), std::string::npos);
}

TEST(XmlReaderTest, RejectsEndWithoutStart) {
  EXPECT_NE(Trace("</a>").find("ERROR"), std::string::npos);
}

TEST(XmlReaderTest, EmptyDocumentIsEof) {
  EXPECT_EQ(Trace(""), "$");
  EXPECT_EQ(Trace("   \n "), "$");
}

TEST(XmlReaderTest, SkipElementConsumesSubtree) {
  XmlReader reader("<a><skip><deep><deeper/></deep>text</skip><keep/></a>");
  ASSERT_TRUE(reader.Next().ok());  // <a>
  ASSERT_TRUE(reader.Next().ok());  // <skip>
  EXPECT_EQ(reader.name(), "skip");
  ASSERT_TRUE(reader.SkipElement().ok());
  auto ev = reader.Next();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev.value(), XmlEvent::kStartElement);
  EXPECT_EQ(reader.name(), "keep");
}

TEST(XmlReaderTest, SkipElementOnSelfClosing) {
  XmlReader reader("<a><b/><c/></a>");
  ASSERT_TRUE(reader.Next().ok());  // a
  ASSERT_TRUE(reader.Next().ok());  // b (self-closing, pending end)
  ASSERT_TRUE(reader.SkipElement().ok());
  auto ev = reader.Next();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(reader.name(), "c");
}

TEST(XmlReaderTest, LineNumbersAdvance) {
  XmlReader reader("<a>\n<b>\n<unclosed\n");
  ASSERT_TRUE(reader.Next().ok());
  ASSERT_TRUE(reader.Next().ok());
  auto ev = reader.Next();
  ASSERT_FALSE(ev.ok());
  EXPECT_NE(ev.status().ToString().find("line"), std::string::npos);
}

TEST(XmlReaderTest, MixedQuotesAndWhitespaceInTags) {
  XmlReader reader("<n   a = \"1\"   b\t=\t'2'  />");
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_EQ(*reader.FindAttr("a"), "1");
  EXPECT_EQ(*reader.FindAttr("b"), "2");
}

TEST(XmlReaderTest, OsmChangeShapedDocument) {
  const char* doc = R"(<?xml version="1.0" encoding="UTF-8"?>
<osmChange version="0.6" generator="test">
  <create>
    <node id="1" version="1" timestamp="2021-01-01T00:00:00Z"
          changeset="7" lat="45.0" lon="-93.2">
      <tag k="highway" v="traffic_signals"/>
    </node>
  </create>
  <modify>
    <way id="2" version="3" timestamp="2021-01-01T08:30:00Z" changeset="8">
      <nd ref="1"/><nd ref="5"/>
      <tag k="highway" v="residential"/>
    </way>
  </modify>
</osmChange>)";
  EXPECT_EQ(Trace(doc),
            "S:osmChange;S:create;S:node;S:tag;E:tag;E:node;E:create;"
            "S:modify;S:way;S:nd;E:nd;S:nd;E:nd;S:tag;E:tag;E:way;E:modify;"
            "E:osmChange;$");
}

}  // namespace
}  // namespace rased
