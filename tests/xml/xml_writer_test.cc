#include "xml/xml_writer.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "xml/xml_reader.h"

namespace rased {
namespace {

TEST(XmlWriterTest, Declaration) {
  std::string out;
  XmlWriter w(&out);
  w.WriteDeclaration();
  EXPECT_EQ(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
}

TEST(XmlWriterTest, SelfClosingWhenEmpty) {
  std::string out;
  XmlWriter w(&out, /*pretty=*/false);
  w.StartElement("node");
  w.Attribute("id", static_cast<int64_t>(7));
  w.EndElement();
  EXPECT_EQ(out, "<node id=\"7\"/>");
}

TEST(XmlWriterTest, NestedWithChildren) {
  std::string out;
  XmlWriter w(&out, /*pretty=*/false);
  w.StartElement("osm");
  w.StartElement("node");
  w.EndElement();
  w.EndElement();
  EXPECT_EQ(out, "<osm><node/></osm>");
}

TEST(XmlWriterTest, EscapesAttributeValues) {
  std::string out;
  XmlWriter w(&out, /*pretty=*/false);
  w.StartElement("t");
  w.Attribute("v", "a<b>&\"c");
  w.EndElement();
  EXPECT_EQ(out, "<t v=\"a&lt;b&gt;&amp;&quot;c\"/>");
}

TEST(XmlWriterTest, EscapesText) {
  std::string out;
  XmlWriter w(&out, /*pretty=*/false);
  w.StartElement("t");
  w.Text("1 < 2 & 3 > 2");
  w.EndElement();
  EXPECT_EQ(out, "<t>1 &lt; 2 &amp; 3 &gt; 2</t>");
}

TEST(XmlWriterTest, CoordinateFormatting) {
  std::string out;
  XmlWriter w(&out, /*pretty=*/false);
  w.StartElement("node");
  w.AttributeCoord("lat", 44.9778);
  w.AttributeCoord("lon", -93.2650001);
  w.EndElement();
  EXPECT_EQ(out, "<node lat=\"44.9778000\" lon=\"-93.2650001\"/>");
}

TEST(XmlWriterTest, DepthTracksNesting) {
  std::string out;
  XmlWriter w(&out);
  EXPECT_EQ(w.depth(), 0);
  w.StartElement("a");
  EXPECT_EQ(w.depth(), 1);
  w.StartElement("b");
  EXPECT_EQ(w.depth(), 2);
  w.EndElement();
  w.EndElement();
  EXPECT_EQ(w.depth(), 0);
}

TEST(XmlWriterTest, WriterReaderRoundTrip) {
  std::string out;
  XmlWriter w(&out);
  w.WriteDeclaration();
  w.StartElement("osm");
  w.Attribute("version", "0.6");
  w.StartElement("node");
  w.Attribute("id", static_cast<int64_t>(-5));
  w.Attribute("user", "weird \"name\" & <tag>");
  w.EndElement();
  w.EndElement();

  XmlReader reader(out);
  auto ev = reader.Next();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(reader.name(), "osm");
  EXPECT_EQ(*reader.FindAttr("version"), "0.6");
  ev = reader.Next();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(reader.name(), "node");
  EXPECT_EQ(*reader.FindAttr("id"), "-5");
  EXPECT_EQ(*reader.FindAttr("user"), "weird \"name\" & <tag>");
}

TEST(XmlWriterTest, RandomizedRoundTripProperty) {
  // Property: any tree written by XmlWriter parses back with the same
  // structure (start/end pairing and attribute values).
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    std::string out;
    XmlWriter w(&out, trial % 2 == 0);
    int opened = 0, total_elements = 0;
    std::vector<std::string> stack;
    // Random open/close/attr walk.
    for (int step = 0; step < 60; ++step) {
      int action = static_cast<int>(rng.Uniform(3));
      if (action == 0 || opened == 0) {
        std::string name = "e" + std::to_string(total_elements++);
        w.StartElement(name);
        stack.push_back(name);
        if (rng.Bernoulli(0.5)) {
          w.Attribute("k", "v&" + std::to_string(step));
        }
        ++opened;
      } else if (action == 1 && opened > 0) {
        w.EndElement();
        stack.pop_back();
        --opened;
      } else if (opened > 0) {
        w.Text("t" + std::to_string(step));
      }
    }
    while (opened-- > 0) w.EndElement();

    XmlReader reader(out);
    int depth = 0;
    int starts = 0;
    for (;;) {
      auto ev = reader.Next();
      ASSERT_TRUE(ev.ok()) << ev.status().ToString() << "\n" << out;
      if (ev.value() == XmlEvent::kEof) break;
      if (ev.value() == XmlEvent::kStartElement) {
        ++depth;
        ++starts;
      }
      if (ev.value() == XmlEvent::kEndElement) --depth;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(starts, total_elements);
  }
}

}  // namespace
}  // namespace rased
