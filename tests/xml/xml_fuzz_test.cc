#include <string>

#include <gtest/gtest.h>

#include "osm/changeset.h"
#include "osm/history.h"
#include "osm/osc.h"
#include "util/random.h"
#include "xml/xml_reader.h"

namespace rased {
namespace {

// Robustness property: no input — however mangled — may crash, hang, or
// leave the parsers in an undefined state. Every outcome must be either a
// clean parse or a clean error Status.

const char kSeedDoc[] = R"(<?xml version="1.0" encoding="UTF-8"?>
<osmChange version="0.6" generator="fuzz">
  <create>
    <node id="1" version="1" timestamp="2021-01-01T00:00:00Z"
          changeset="7" uid="3" user="a&amp;b" lat="45.0" lon="-93.2">
      <tag k="highway" v="residential"/>
    </node>
    <way id="2" version="3" timestamp="2021-01-02T10:30:00Z" changeset="8">
      <nd ref="1"/><nd ref="5"/>
      <tag k="highway" v="service"/>
    </way>
  </create>
  <modify>
    <relation id="3" version="2" timestamp="2021-01-03T04:05:06Z"
              changeset="9">
      <member type="way" ref="2" role="outer"/>
    </relation>
  </modify>
</osmChange>)";

std::string Mutate(const std::string& doc, Rng& rng) {
  std::string out = doc;
  int mutations = 1 + static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < mutations && !out.empty(); ++i) {
    size_t pos = rng.Uniform(out.size());
    switch (rng.Uniform(5)) {
      case 0:  // flip a byte
        out[pos] = static_cast<char>(rng.Uniform(256));
        break;
      case 1:  // delete a span
        out.erase(pos, 1 + rng.Uniform(16));
        break;
      case 2:  // duplicate a span
        out.insert(pos, out.substr(pos, 1 + rng.Uniform(16)));
        break;
      case 3:  // inject markup-ish noise
        out.insert(pos, "<&\"/>");
        break;
      case 4:  // truncate
        out.resize(pos);
        break;
    }
  }
  return out;
}

TEST(XmlFuzzTest, ReaderNeverCrashesOnMutatedInput) {
  Rng rng(20260704);
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc = Mutate(kSeedDoc, rng);
    XmlReader reader(doc);
    int events = 0;
    for (;;) {
      auto ev = reader.Next();
      if (!ev.ok()) break;  // clean error
      if (ev.value() == XmlEvent::kEof) break;
      // A mangled document must still terminate in bounded events.
      ASSERT_LT(++events, 100000) << "parser failed to terminate";
    }
  }
}

TEST(XmlFuzzTest, OscReaderNeverCrashesOnMutatedInput) {
  Rng rng(777);
  int parsed_ok = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string doc = Mutate(kSeedDoc, rng);
    auto changes = OscReader::ParseAll(doc);
    if (changes.ok()) ++parsed_ok;  // rare but possible (benign mutations)
  }
  // The specific count is irrelevant; surviving 300 hostile inputs is the
  // assertion. parsed_ok is used so the loop is not optimized away.
  EXPECT_GE(parsed_ok, 0);
}

TEST(XmlFuzzTest, ChangesetAndHistoryReadersSurviveMutations) {
  const char kChangesetDoc[] = R"(<osm>
    <changeset id="5" created_at="2021-01-01T00:00:00Z" open="false"
               min_lat="1.0" min_lon="2.0" max_lat="3.0" max_lon="4.0">
      <tag k="comment" v="x"/>
    </changeset>
  </osm>)";
  Rng rng(888);
  for (int trial = 0; trial < 300; ++trial) {
    std::string doc = Mutate(kChangesetDoc, rng);
    // NOLINT-RASED(status-discard): fuzzing only checks for crashes/hangs;
    (void)ChangesetReader::ParseAll(doc);
    // NOLINT-RASED(status-discard): mutated input is expected to fail parse
    (void)HistoryReader::ParseAll(doc);
  }
}

TEST(XmlFuzzTest, DeeplyNestedInputTerminates) {
  // Pathological nesting must not blow the stack or hang.
  std::string doc;
  for (int i = 0; i < 5000; ++i) doc += "<a>";
  XmlReader reader(doc);
  for (;;) {
    auto ev = reader.Next();
    if (!ev.ok() || ev.value() == XmlEvent::kEof) break;
  }
  SUCCEED();
}

TEST(XmlFuzzTest, HugeAttributeAndEntityFlood) {
  std::string doc = "<a v=\"" + std::string(100000, 'x') + "\"/>";
  XmlReader reader(doc);
  auto ev = reader.Next();
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(reader.FindAttr("v")->size(), 100000u);

  std::string entities = "<a>";
  for (int i = 0; i < 10000; ++i) entities += "&amp;";
  entities += "</a>";
  XmlReader reader2(entities);
  ASSERT_TRUE(reader2.Next().ok());
  auto text = reader2.Next();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(reader2.text().size(), 10000u);
}

}  // namespace
}  // namespace rased
