#include "core/replication_ingestor.h"

#include <gtest/gtest.h>

#include "io/env.h"
#include "synth/update_generator.h"
#include "util/clock.h"

namespace rased {
namespace {

// End-to-end replication: a synthetic publisher fills a feed, a RASED
// instance consumes it incrementally with day finalization.
class ReplicationIngestorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RasedOptions options;
    options.dir = env::JoinPath(dir_.path(), "rased");
    options.schema = CubeSchema::BenchScale();
    options.cache.byte_budget =
        CacheOptions::BytesForCubes(8, options.schema);
    auto rased = Rased::Create(options);
    ASSERT_TRUE(rased.ok());
    rased_ = std::move(rased).value();

    synth_.seed = 51;
    synth_.base_updates_per_day = 30.0;
    synth_.period = DateRange(Date::FromYmd(2021, 7, 1),
                              Date::FromYmd(2021, 7, 31));
    generator_ = std::make_unique<UpdateGenerator>(
        synth_, &rased_->world(), rased_->road_types());
    feed_ = std::make_unique<ReplicationDirectory>(
        env::JoinPath(dir_.path(), "feed"));
  }

  void PublishDays(Date first, Date last) {
    for (Date d = first; d <= last; d = d.next()) {
      DayArtifacts files = generator_->GenerateDayArtifacts(d);
      ++sequence_;
      ASSERT_TRUE(feed_->Publish(sequence_, files.osc_xml,
                                 OsmTimestamp{d, 86399},
                                 files.changesets_xml)
                      .ok());
    }
  }

  uint64_t TotalOn(Date day) {
    AnalysisQuery q;
    q.range = DateRange(day, day);
    auto result = rased_->Query(q);
    EXPECT_TRUE(result.ok());
    if (!result.ok() || result.value().rows.empty()) return 0;
    return result.value().rows[0].count;
  }

  TempDir dir_{"repl-ingestor"};
  std::unique_ptr<Rased> rased_;
  SynthOptions synth_;
  std::unique_ptr<UpdateGenerator> generator_;
  std::unique_ptr<ReplicationDirectory> feed_;
  uint64_t sequence_ = 0;
};

TEST_F(ReplicationIngestorTest, HoldsBackTheTrailingDay) {
  PublishDays(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 3));
  ReplicationIngestor ingestor(rased_.get(), feed_->dir());
  auto stats = ingestor.CatchUp();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // July 3 is the feed's trailing day: held back.
  EXPECT_EQ(stats.value().days_ingested, 2u);
  EXPECT_EQ(stats.value().sequences_applied, 2u);
  EXPECT_EQ(rased_->index()->coverage(),
            DateRange(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 2)));
  EXPECT_GT(stats.value().records_ingested, 0u);
}

TEST_F(ReplicationIngestorTest, FinalizeIngestsEverything) {
  PublishDays(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 3));
  ReplicationIngestor ingestor(rased_.get(), feed_->dir());
  auto stats = ingestor.CatchUp(/*finalize_all=*/true);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().days_ingested, 3u);
  EXPECT_EQ(ingestor.LastApplied().value_or(0), 3u);
}

TEST_F(ReplicationIngestorTest, IncrementalCatchUpMatchesDirectIngestion) {
  PublishDays(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 5));
  ReplicationIngestor ingestor(rased_.get(), feed_->dir());
  ASSERT_TRUE(ingestor.CatchUp().ok());  // days 1-4

  // More days arrive; the previously trailing day is now complete.
  PublishDays(Date::FromYmd(2021, 7, 6), Date::FromYmd(2021, 7, 8));
  auto stats = ingestor.CatchUp();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(rased_->index()->coverage().last, Date::FromYmd(2021, 7, 7));

  // Every ingested day's totals match the generator's record counts
  // (modulo the provisional classification, which doesn't change counts).
  for (Date d = Date::FromYmd(2021, 7, 1); d <= Date::FromYmd(2021, 7, 7);
       d = d.next()) {
    EXPECT_EQ(TotalOn(d), generator_->GenerateDayRecords(d).size()) << d.ToString();
  }
}

TEST_F(ReplicationIngestorTest, SecondCatchUpIsIdempotent) {
  PublishDays(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 4));
  ReplicationIngestor ingestor(rased_.get(), feed_->dir());
  ASSERT_TRUE(ingestor.CatchUp().ok());
  auto again = ingestor.CatchUp();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().days_ingested, 0u);
  EXPECT_EQ(again.value().sequences_applied, 0u);
}

TEST_F(ReplicationIngestorTest, EmptyFeedIsNoWork) {
  ReplicationIngestor ingestor(rased_.get(),
                               env::JoinPath(dir_.path(), "missing-feed"));
  auto stats = ingestor.CatchUp();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().days_ingested, 0u);
}

TEST_F(ReplicationIngestorTest, LagAndProgressGaugesTrackCatchUp) {
  // Under a FakeClock the progress stamp is exactly assertable — this is
  // what /readyz compares against max_ingest_idle_micros to detect a
  // wedged ingest.
  FakeClock fake(7000000);
  SetClockForTesting(&fake);

  Gauge* lag = rased_->metrics()->GetGauge("rased_ingest_lag_sequences", "");
  Gauge* progress =
      rased_->metrics()->GetGauge("rased_ingest_last_progress_micros", "");

  PublishDays(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 3));
  ReplicationIngestor ingestor(rased_.get(), feed_->dir());
  EXPECT_EQ(lag->value(), 0);  // untouched before the first CatchUp
  EXPECT_EQ(progress->value(), 0);

  ASSERT_TRUE(ingestor.CatchUp().ok());
  // The trailing day (sequence 3) is held back, so one sequence lags.
  EXPECT_EQ(lag->value(), 1);
  EXPECT_EQ(progress->value(), 7000000);

  fake.Advance(5000000);
  ASSERT_TRUE(ingestor.CatchUp(/*finalize_all=*/true).ok());
  EXPECT_EQ(lag->value(), 0);
  EXPECT_EQ(progress->value(), 12000000);

  // A caught-up CatchUp still counts as progress (the feed was reached).
  fake.Advance(3000000);
  ASSERT_TRUE(ingestor.CatchUp().ok());
  EXPECT_EQ(lag->value(), 0);
  EXPECT_EQ(progress->value(), 15000000);

  SetClockForTesting(nullptr);
}

TEST_F(ReplicationIngestorTest, GapDaysAreFilledWithEmptyCubes) {
  PublishDays(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 2));
  // Skip July 3-4 entirely, then resume.
  generator_ = std::make_unique<UpdateGenerator>(synth_, &rased_->world(),
                                                 rased_->road_types());
  PublishDays(Date::FromYmd(2021, 7, 5), Date::FromYmd(2021, 7, 7));

  ReplicationIngestor ingestor(rased_.get(), feed_->dir());
  auto stats = ingestor.CatchUp(/*finalize_all=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(rased_->index()->coverage(),
            DateRange(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 7)));
  EXPECT_EQ(TotalOn(Date::FromYmd(2021, 7, 3)), 0u);
  EXPECT_EQ(TotalOn(Date::FromYmd(2021, 7, 4)), 0u);
  EXPECT_GT(TotalOn(Date::FromYmd(2021, 7, 5)), 0u);
}

}  // namespace
}  // namespace rased
