#include <map>

#include <gtest/gtest.h>

#include "core/rased.h"
#include "dbms/baseline_dbms.h"
#include "io/env.h"
#include "synth/update_generator.h"
#include "test_helpers.h"

namespace rased {
namespace {

// End-to-end pipeline tests: synthetic planet -> OSM-format files -> daily
// crawl -> cubes -> queries, plus the monthly-rebuild path and the
// RASED-vs-baseline consistency check behind Figure 10.
class EndToEndTest : public ::testing::Test {
 protected:
  TempDir dir_{"e2e-test"};
};

TEST_F(EndToEndTest, DailyArtifactPipelineMatchesRecordPipeline) {
  // Ingesting the XML artifacts must produce the same index contents as
  // ingesting the records directly (for the attributes diffs carry).
  RasedOptions options;
  options.dir = env::JoinPath(dir_.path(), "via-files");
  options.schema = CubeSchema::BenchScale();
  options.enable_warehouse = false;
  auto via_files = Rased::Create(options);
  ASSERT_TRUE(via_files.ok());

  RasedOptions options2 = options;
  options2.dir = env::JoinPath(dir_.path(), "via-records");
  auto via_records = Rased::Create(options2);
  ASSERT_TRUE(via_records.ok());

  SynthOptions synth;
  synth.seed = 33;
  synth.base_updates_per_day = 50.0;
  synth.period = DateRange(Date::FromYmd(2021, 5, 1),
                           Date::FromYmd(2021, 5, 14));
  UpdateGenerator gen(synth, &via_files.value()->world(),
                      via_files.value()->road_types());

  for (Date d = synth.period.first; d <= synth.period.last; d = d.next()) {
    DayArtifacts artifacts = gen.GenerateDayArtifacts(d);
    ASSERT_TRUE(via_files.value()
                    ->IngestDailyArtifacts(d, artifacts.osc_xml,
                                           artifacts.changesets_xml)
                    .ok());
    // The record path needs the provisional classification the daily
    // crawler would produce.
    std::vector<UpdateRecord> records = gen.GenerateDayRecords(d);
    for (UpdateRecord& r : records) {
      if (r.update_type != UpdateType::kNew) r.update_type = kProvisionalUpdate;
    }
    ASSERT_TRUE(via_records.value()->IngestDayRecords(d, records).ok());
  }

  // Compare: per-country per-element counts must agree.
  AnalysisQuery q;
  q.range = synth.period;
  q.group_country = true;
  q.group_element_type = true;
  q.group_update_type = true;
  auto a = via_files.value()->Query(q);
  auto b = via_records.value()->Query(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().rows.size(), b.value().rows.size());
  for (size_t i = 0; i < a.value().rows.size(); ++i) {
    EXPECT_EQ(a.value().rows[i].count, b.value().rows[i].count) << i;
    EXPECT_EQ(a.value().rows[i].country, b.value().rows[i].country);
  }
}

TEST_F(EndToEndTest, MonthlyRebuildReclassifiesUpdateTypes) {
  RasedOptions options;
  options.dir = env::JoinPath(dir_.path(), "monthly");
  options.schema = CubeSchema::BenchScale();
  options.enable_warehouse = false;
  auto rased = Rased::Create(options);
  ASSERT_TRUE(rased.ok());

  SynthOptions synth;
  synth.seed = 34;
  synth.base_updates_per_day = 50.0;
  Date month = Date::FromYmd(2021, 3, 1);
  synth.period = DateRange(month, month.month_end());
  UpdateGenerator gen(synth, &rased.value()->world(),
                      rased.value()->road_types());

  // Daily crawl first (provisional classification)...
  for (Date d = month; d <= month.month_end(); d = d.next()) {
    DayArtifacts artifacts = gen.GenerateDayArtifacts(d);
    ASSERT_TRUE(rased.value()
                    ->IngestDailyArtifacts(d, artifacts.osc_xml,
                                           artifacts.changesets_xml)
                    .ok());
  }

  AnalysisQuery by_type;
  by_type.range = synth.period;
  by_type.group_update_type = true;
  auto provisional = rased.value()->Query(by_type);
  ASSERT_TRUE(provisional.ok());
  // Only two update-type rows exist before the monthly pass (Section V).
  EXPECT_EQ(provisional.value().rows.size(), 2u);

  // ... then the monthly full-history pass.
  MonthArtifacts monthly = gen.GenerateMonthArtifacts(month);
  ASSERT_TRUE(rased.value()
                  ->ApplyMonthlyArtifacts(month, monthly.history_xml,
                                          monthly.changesets_xml)
                  .ok());

  auto final_result = rased.value()->Query(by_type);
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(final_result.value().rows.size(), 4u);  // all four types now

  // Totals are preserved by the rebuild.
  uint64_t before = 0, after = 0;
  for (const ResultRow& r : provisional.value().rows) before += r.count;
  for (const ResultRow& r : final_result.value().rows) after += r.count;
  EXPECT_EQ(before, after);
}

TEST_F(EndToEndTest, MonthlyRebuildInvalidatesWarmCache) {
  // Regression test: a warmed static cache must not keep serving the
  // pre-rebuild cubes after ApplyMonthlyArtifacts rewrote them.
  RasedOptions options;
  options.dir = env::JoinPath(dir_.path(), "cache-invalidation");
  options.schema = CubeSchema::BenchScale();
  options.enable_warehouse = false;
  options.cache.byte_budget =
      CacheOptions::BytesForCubes(16, options.schema);
  auto rased = Rased::Create(options);
  ASSERT_TRUE(rased.ok());

  SynthOptions synth;
  synth.seed = 36;
  synth.base_updates_per_day = 40.0;
  Date month = Date::FromYmd(2021, 9, 1);
  synth.period = DateRange(month, month.month_end());
  UpdateGenerator gen(synth, &rased.value()->world(),
                      rased.value()->road_types());
  for (Date d = month; d <= month.month_end(); d = d.next()) {
    DayArtifacts files = gen.GenerateDayArtifacts(d);
    ASSERT_TRUE(rased.value()
                    ->IngestDailyArtifacts(d, files.osc_xml,
                                           files.changesets_xml)
                    .ok());
  }
  // Warm BEFORE the rebuild, so stale cubes sit in the cache.
  ASSERT_TRUE(rased.value()->WarmCache().ok());

  MonthArtifacts monthly = gen.GenerateMonthArtifacts(month);
  ASSERT_TRUE(rased.value()
                  ->ApplyMonthlyArtifacts(month, monthly.history_xml,
                                          monthly.changesets_xml)
                  .ok());

  AnalysisQuery by_type;
  by_type.range = synth.period;
  by_type.group_update_type = true;
  auto result = rased.value()->Query(by_type);
  ASSERT_TRUE(result.ok());
  // All four update types must be visible post-rebuild, not the two
  // provisional ones a stale cached cube would show.
  EXPECT_EQ(result.value().rows.size(), 4u);
}

TEST_F(EndToEndTest, RasedAndBaselineDbmsAgree) {
  // The Figure 10 comparison is only meaningful because both systems
  // compute the same answers; verify that here.
  RasedOptions options;
  options.dir = env::JoinPath(dir_.path(), "rased");
  options.schema = CubeSchema::BenchScale();
  options.enable_warehouse = false;
  auto rased = Rased::Create(options);
  ASSERT_TRUE(rased.ok());

  DbmsOptions dbms_options;
  dbms_options.dir = env::JoinPath(dir_.path(), "dbms");
  auto dbms = BaselineDbms::Create(dbms_options);
  ASSERT_TRUE(dbms.ok());

  SynthOptions synth;
  synth.seed = 35;
  synth.base_updates_per_day = 60.0;
  synth.period = DateRange(Date::FromYmd(2021, 6, 1),
                           Date::FromYmd(2021, 7, 31));
  UpdateGenerator gen(synth, &rased.value()->world(),
                      rased.value()->road_types());
  for (Date d = synth.period.first; d <= synth.period.last; d = d.next()) {
    auto records = gen.GenerateDayRecords(d);
    ASSERT_TRUE(rased.value()->IngestDayRecords(d, records).ok());
    ASSERT_TRUE(dbms.value()->Append(records).ok());
  }
  ASSERT_TRUE(dbms.value()->Sync().ok());

  // A suite of queries with various filters and groupings.
  std::vector<AnalysisQuery> queries;
  {
    AnalysisQuery q;
    q.range = DateRange(Date::FromYmd(2021, 6, 5), Date::FromYmd(2021, 7, 20));
    q.group_country = true;
    queries.push_back(q);

    q = AnalysisQuery();
    q.range = synth.period;
    q.group_element_type = true;
    q.group_update_type = true;
    queries.push_back(q);

    q = AnalysisQuery();
    q.range = DateRange(Date::FromYmd(2021, 6, 1), Date::FromYmd(2021, 6, 30));
    q.element_types = {ElementType::kWay};
    q.group_road_type = true;
    queries.push_back(q);

    q = AnalysisQuery();
    q.range = DateRange(Date::FromYmd(2021, 7, 1), Date::FromYmd(2021, 7, 7));
    q.group_date = true;
    q.group_country = true;
    queries.push_back(q);
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto a = rased.value()->Query(queries[qi]);
    auto b = dbms.value()->Execute(queries[qi]);
    ASSERT_TRUE(a.ok()) << "query " << qi;
    ASSERT_TRUE(b.ok()) << "query " << qi;
    ASSERT_EQ(a.value().rows.size(), b.value().rows.size()) << "query " << qi;
    for (size_t i = 0; i < a.value().rows.size(); ++i) {
      EXPECT_EQ(a.value().rows[i].count, b.value().rows[i].count)
          << "query " << qi << " row " << i;
    }
  }
}

TEST_F(EndToEndTest, ReopenedSystemServesQueries) {
  std::string dir = env::JoinPath(dir_.path(), "reopen");
  uint64_t expected_total = 0;
  {
    auto rased = testing_helpers::MakePopulatedRased(
        dir, Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
    ASSERT_NE(rased, nullptr);
    AnalysisQuery q;
    q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
    auto result = rased->Query(q);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().rows.size(), 1u);
    expected_total = result.value().rows[0].count;
    ASSERT_TRUE(rased->Sync().ok());
  }
  RasedOptions options;
  options.dir = dir;
  options.schema = CubeSchema::BenchScale();
  options.cache.byte_budget =
      CacheOptions::BytesForCubes(32, options.schema);
  auto reopened = Rased::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE(reopened.value()->WarmCache().ok());
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
  auto result = reopened.value()->Query(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0].count, expected_total);
  // Sample queries work after the warehouse index rebuild.
  auto samples =
      reopened.value()->SampleInBox(BoundingBox{-90, -180, 90, 180}, 10);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().size(), 10u);
}

}  // namespace
}  // namespace rased
