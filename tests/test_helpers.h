#ifndef RASED_TESTS_TEST_HELPERS_H_
#define RASED_TESTS_TEST_HELPERS_H_

#include <memory>
#include <string>

#include "core/rased.h"
#include "io/env.h"
#include "synth/update_generator.h"

namespace rased {
namespace testing_helpers {

/// Builds a small but fully populated Rased instance: bench-scale schema,
/// two months of synthetic history ingested through the real daily
/// pipeline (records + warehouse), cache warmed.
/// `cache_budget` overrides the cache byte budget; 0 keeps the generous
/// default (32 dense cubes — with adaptive compression that typically
/// holds the entire two-month workload). Tests that need the device model
/// exercised pass a small budget so part of the workload stays on disk.
inline std::unique_ptr<Rased> MakePopulatedRased(
    const std::string& dir, Date first = Date::FromYmd(2021, 1, 1),
    Date last = Date::FromYmd(2021, 2, 28), double base_rate = 40.0,
    uint64_t cache_budget = 0) {
  RasedOptions options;
  options.dir = dir;
  options.schema = CubeSchema::BenchScale();
  options.num_levels = 4;
  options.device = DeviceModel{100, 100, 0.0};
  options.cache.byte_budget =
      cache_budget != 0 ? cache_budget
                        : CacheOptions::BytesForCubes(32, options.schema);
  auto rased = Rased::Create(options);
  if (!rased.ok()) return nullptr;

  SynthOptions synth_options;
  synth_options.seed = 21;
  synth_options.base_updates_per_day = base_rate;
  synth_options.period = DateRange(first, last);
  UpdateGenerator gen(synth_options, &rased.value()->world(),
                      rased.value()->road_types());
  gen.activity().InitRoadNetworkSizes(rased.value()->mutable_world());
  for (Date d = first; d <= last; d = d.next()) {
    Status s = rased.value()->IngestDayRecords(d, gen.GenerateDayRecords(d));
    if (!s.ok()) return nullptr;
  }
  if (!rased.value()->WarmCache().ok()) return nullptr;
  return std::move(rased).value();
}

}  // namespace testing_helpers
}  // namespace rased

#endif  // RASED_TESTS_TEST_HELPERS_H_
