#include "obs/heap_stats.h"

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rased {
namespace {

// Allocation sizes large enough that allocator size-class rounding cannot
// make two of them collide, small enough to stay off any mmap path.
constexpr size_t kBlock = 64 * 1024;

TEST(HeapStatsTest, ScopeChargesMatchedPairExactly) {
  ResourceScope scope;
  ResourceUsage before = scope.Usage();
  {
    std::unique_ptr<char[]> block(new char[kBlock]);
    block[0] = 1;  // keep the allocation alive past the optimizer
  }
  ResourceUsage after = scope.Usage();
  EXPECT_EQ(after.alloc_ops - before.alloc_ops, 1u);
  EXPECT_EQ(after.free_ops - before.free_ops, 1u);
  EXPECT_GE(after.allocated_bytes - before.allocated_bytes, kBlock);
  // Usable size is charged symmetrically on both sides, so a matched
  // new/delete pair cancels exactly.
  EXPECT_EQ(after.allocated_bytes - before.allocated_bytes,
            after.freed_bytes - before.freed_bytes);
}

TEST(HeapStatsTest, PeakTracksLiveHighWaterNotTotals) {
  ResourceScope scope;
  {
    std::unique_ptr<char[]> big(new char[8 * kBlock]);
    big[0] = 1;
  }
  // After the big block is freed, a small allocation must not raise peak.
  std::unique_ptr<char[]> small(new char[16]);
  small[0] = 1;
  ResourceUsage usage = scope.Usage();
  EXPECT_GE(usage.peak_bytes, static_cast<int64_t>(8 * kBlock));
  // Peak is a high-water mark, not the sum of all allocations ever.
  EXPECT_LT(usage.peak_bytes, static_cast<int64_t>(9 * kBlock));
}

TEST(HeapStatsTest, NestedScopeChargesChildAndParent) {
  ResourceScope outer;
  std::unique_ptr<char[]> a(new char[kBlock]);
  a[0] = 1;
  ResourceUsage outer_before_inner = outer.Usage();
  ResourceUsage inner_usage;
  {
    ResourceScope inner;
    std::unique_ptr<char[]> b(new char[2 * kBlock]);
    b[0] = 1;
    inner_usage = inner.Usage();
  }
  // All assertions after both captures, so the test harness itself cannot
  // allocate between the two Usage() reads it compares.
  ResourceUsage outer_usage = outer.Usage();
  EXPECT_EQ(inner_usage.alloc_ops, 1u);
  EXPECT_GE(inner_usage.allocated_bytes, 2 * kBlock);
  // The inner scope never sees the parent's earlier allocation.
  EXPECT_LT(inner_usage.allocated_bytes, 3 * kBlock);
  // The child's traffic is part of the parent's: same thread counters.
  EXPECT_EQ(outer_usage.allocated_bytes - outer_before_inner.allocated_bytes,
            inner_usage.allocated_bytes);
  EXPECT_GE(outer_usage.alloc_ops, 2u);
  // The child's high-water (a + b live at once) folds into the parent.
  EXPECT_GE(outer_usage.peak_bytes, static_cast<int64_t>(3 * kBlock));
}

TEST(HeapStatsTest, MergeAddsUsageHandedOffFromAnotherThread) {
  ResourceScope scope;
  ResourceUsage worker_usage;
  std::thread worker([&worker_usage] {
    ResourceScope worker_scope;
    std::vector<char> buf(kBlock, 'x');
    ASSERT_NE(buf[0], 0);
    worker_usage = worker_scope.Usage();
  });
  worker.join();
  ResourceUsage local_before = scope.Usage();
  scope.Merge(worker_usage);
  ResourceUsage merged = scope.Usage();
  EXPECT_EQ(merged.allocated_bytes,
            local_before.allocated_bytes + worker_usage.allocated_bytes);
  EXPECT_EQ(merged.alloc_ops, local_before.alloc_ops + worker_usage.alloc_ops);
  EXPECT_GE(worker_usage.allocated_bytes, kBlock);
}

TEST(HeapStatsTest, ThreadTotalsAreMonotoneAndPerThread) {
  ThreadAllocCounters before = ThreadAllocTotals();
  std::unique_ptr<char[]> block(new char[kBlock]);
  block[0] = 1;
  ThreadAllocCounters after = ThreadAllocTotals();
  EXPECT_GT(after.alloc_ops, before.alloc_ops);
  EXPECT_GE(after.alloc_bytes - before.alloc_bytes, kBlock);
  block.reset();
  ThreadAllocCounters freed = ThreadAllocTotals();
  EXPECT_GT(freed.free_ops, after.free_ops);
}

// Eight threads hammer their own scopes concurrently: every scope's
// matched pairs must cancel exactly and nothing may bleed across threads.
// Runs in the TSan suite (check.sh) to prove the thread-local counters
// and the interposed operators are race-free.
TEST(HeapStatsTest, EightThreadAllocHammerStaysExact) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<ResourceUsage> usages(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &usages] {
      ResourceScope scope;
      for (int i = 0; i < kIters; ++i) {
        std::unique_ptr<char[]> block(
            new char[64 + static_cast<size_t>((t * kIters + i) % 512)]);
        block[0] = static_cast<char>(i);
      }
      usages[static_cast<size_t>(t)] = scope.Usage();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    const ResourceUsage& usage = usages[static_cast<size_t>(t)];
    EXPECT_GE(usage.alloc_ops, static_cast<uint64_t>(kIters)) << t;
    EXPECT_EQ(usage.alloc_ops, usage.free_ops) << t;
    EXPECT_EQ(usage.allocated_bytes, usage.freed_bytes) << t;
    EXPECT_GT(usage.peak_bytes, 0) << t;
  }
}

}  // namespace
}  // namespace rased
