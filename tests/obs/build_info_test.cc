#include "obs/build_info.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"

namespace rased {
namespace {

TEST(BuildInfoTest, Avx2DispatchLabelCoversAllStates) {
  EXPECT_EQ(Avx2DispatchLabel(true, true), "active");
  EXPECT_EQ(Avx2DispatchLabel(true, false), "compiled-disabled");
  EXPECT_EQ(Avx2DispatchLabel(false, false), "not-compiled");
}

TEST(BuildInfoTest, MakeBuildInfoBakesInIdentity) {
  BuildInfo info = MakeBuildInfo("active");
  EXPECT_FALSE(info.version.empty());
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_EQ(info.avx2, "active");
}

TEST(BuildInfoTest, GaugeRendersIdentityAsLabels) {
  MetricsRegistry registry;
  BuildInfo info;
  info.version = "1.2.3";
  info.git_sha = "abc1234";
  info.compiler = "testcc 9.9";
  info.avx2 = "not-compiled";
  RegisterBuildInfoGauge(&registry, info);

  std::string text = registry.RenderPrometheus();
  // The _info convention: constant 1, identity entirely in labels.
  EXPECT_NE(text.find("rased_build_info{"), std::string::npos);
  EXPECT_NE(text.find("version=\"1.2.3\""), std::string::npos);
  EXPECT_NE(text.find("git_sha=\"abc1234\""), std::string::npos);
  EXPECT_NE(text.find("compiler=\"testcc 9.9\""), std::string::npos);
  EXPECT_NE(text.find("avx2=\"not-compiled\""), std::string::npos);
  EXPECT_NE(text.find("} 1\n"), std::string::npos);
}

}  // namespace
}  // namespace rased
