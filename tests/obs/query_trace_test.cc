#include "obs/query_trace.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "util/clock.h"

namespace rased {
namespace {

QueryTrace MakeTrace(int64_t wall, int64_t device = 0) {
  QueryTrace trace;
  trace.summary = "test query";
  trace.wall_micros = wall;
  trace.device_micros = device;
  trace.spans = {{"plan", wall / 2, 0}, {"fetch", wall - wall / 2, device}};
  return trace;
}

TEST(QueryTraceTest, RecordAssignsSequentialIds) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.Record(MakeTrace(10)), 1u);
  EXPECT_EQ(recorder.Record(MakeTrace(10)), 2u);
  EXPECT_EQ(recorder.total_recorded(), 2u);
}

TEST(QueryTraceTest, RingKeepsLastNOldestFirst) {
  TraceRecorderOptions options;
  options.capacity = 4;
  TraceRecorder recorder(options);
  for (int i = 0; i < 10; ++i) recorder.Record(MakeTrace(i));

  std::vector<QueryTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 4u);
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].id, 7 + i);  // ids 7..10 survive, oldest first
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
}

TEST(QueryTraceTest, TracesKeepSpansAndDeviceTime) {
  TraceRecorder recorder;
  recorder.Record(MakeTrace(100, 40));
  std::vector<QueryTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].total_micros(), 140);
  ASSERT_EQ(traces[0].spans.size(), 2u);
  EXPECT_EQ(traces[0].spans[0].name, "plan");
  EXPECT_EQ(traces[0].spans[1].name, "fetch");
  EXPECT_EQ(traces[0].spans[1].device_micros, 40);
}

TEST(QueryTraceTest, SlowQueriesCountAgainstTheThreshold) {
  MetricsRegistry registry;
  TraceRecorderOptions options;
  options.slow_query_micros = 100;
  TraceRecorder recorder(options, &registry);

  recorder.Record(MakeTrace(50));        // fast
  recorder.Record(MakeTrace(100));       // exactly at threshold: not slow
  recorder.Record(MakeTrace(90, 20));    // wall + device = 110: slow
  recorder.Record(MakeTrace(101));       // slow

  EXPECT_EQ(registry.GetCounter("rased_traces_recorded_total", "")->value(),
            4u);
  EXPECT_EQ(registry.GetCounter("rased_slow_queries_total", "")->value(), 2u);
}

TEST(QueryTraceTest, NonPositiveThresholdDisablesSlowQueryAccounting) {
  MetricsRegistry registry;
  TraceRecorderOptions options;
  options.slow_query_micros = 0;
  TraceRecorder recorder(options, &registry);
  recorder.Record(MakeTrace(1000000000));
  EXPECT_EQ(registry.GetCounter("rased_slow_queries_total", "")->value(), 0u);
}

// The whole wall-clock side of tracing is driven by util/clock.h NowMicros;
// installing a FakeClock makes StopWatch (and therefore every wall metric)
// exactly assertable.
TEST(QueryTraceTest, FakeClockMakesStopWatchDeterministic) {
  FakeClock clock(1000);
  SetClockForTesting(&clock);
  StopWatch watch;
  EXPECT_EQ(watch.ElapsedMicros(), 0);
  clock.Advance(123);
  EXPECT_EQ(watch.ElapsedMicros(), 123);
  clock.Set(5000);
  EXPECT_EQ(watch.ElapsedMicros(), 4000);
  watch.Reset();
  EXPECT_EQ(watch.ElapsedMicros(), 0);
  SetClockForTesting(nullptr);
}

TEST(QueryTraceTest, ConcurrentRecordAndSnapshotStayConsistent) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  MetricsRegistry registry;
  TraceRecorderOptions options;
  options.capacity = 16;
  options.slow_query_micros = 0;  // keep the log quiet under the hammer
  TraceRecorder recorder(options, &registry);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      std::vector<QueryTrace> traces = recorder.Snapshot();
      EXPECT_LE(traces.size(), options.capacity);
      // Ids within one snapshot are strictly increasing (ring order).
      for (size_t i = 1; i < traces.size(); ++i) {
        EXPECT_LT(traces[i - 1].id, traces[i].id);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) recorder.Record(MakeTrace(i));
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(recorder.total_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GetCounter("rased_traces_recorded_total", "")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.Snapshot().size(), options.capacity);
}

TEST(QueryTraceTest, SlowQueryLogIsTokenBucketRateLimited) {
  FakeClock clock(1000000);
  SetClockForTesting(&clock);
  MetricsRegistry registry;
  TraceRecorderOptions options;
  options.slow_query_micros = 100;
  options.slow_log_per_sec = 1.0;
  TraceRecorder recorder(options, &registry);
  Counter* suppressed =
      registry.GetCounter("rased_slow_query_log_suppressed_total", "");

  // Burst of slow queries at one instant: the first line is emitted (the
  // bucket starts full), the rest are suppressed and counted.
  recorder.Record(MakeTrace(500));
  recorder.Record(MakeTrace(500));
  recorder.Record(MakeTrace(500));
  EXPECT_EQ(registry.GetCounter("rased_slow_queries_total", "")->value(), 3u);
  EXPECT_EQ(suppressed->value(), 2u);

  // Half a second refills half a token: still suppressed.
  clock.Advance(500000);
  recorder.Record(MakeTrace(500));
  EXPECT_EQ(suppressed->value(), 3u);

  // Another half second completes the refill: the next slow query logs
  // again (carrying the suppressed count) and nothing new is suppressed.
  clock.Advance(500000);
  recorder.Record(MakeTrace(500));
  EXPECT_EQ(suppressed->value(), 3u);
  EXPECT_EQ(registry.GetCounter("rased_slow_queries_total", "")->value(), 5u);
  SetClockForTesting(nullptr);
}

TEST(QueryTraceTest, NonPositiveRateDisablesTheLogLimiter) {
  FakeClock clock(1000000);
  SetClockForTesting(&clock);
  MetricsRegistry registry;
  TraceRecorderOptions options;
  options.slow_query_micros = 100;
  options.slow_log_per_sec = 0;  // unlimited: every slow query logs
  TraceRecorder recorder(options, &registry);
  for (int i = 0; i < 5; ++i) recorder.Record(MakeTrace(500));
  EXPECT_EQ(registry.GetCounter("rased_slow_queries_total", "")->value(), 5u);
  EXPECT_EQ(
      registry.GetCounter("rased_slow_query_log_suppressed_total", "")->value(),
      0u);
  SetClockForTesting(nullptr);
}

TEST(QueryTraceTest, FastQueriesNeverTouchTheLimiter) {
  FakeClock clock(1000000);
  SetClockForTesting(&clock);
  MetricsRegistry registry;
  TraceRecorderOptions options;
  options.slow_query_micros = 1000;
  TraceRecorder recorder(options, &registry);
  // Fast queries consume no tokens; a later slow one still logs first-try.
  for (int i = 0; i < 10; ++i) recorder.Record(MakeTrace(10));
  recorder.Record(MakeTrace(5000));
  EXPECT_EQ(
      registry.GetCounter("rased_slow_query_log_suppressed_total", "")->value(),
      0u);
  SetClockForTesting(nullptr);
}

TEST(QueryTraceTest, TracesCarryAllocAttribution) {
  TraceRecorder recorder;
  QueryTrace trace = MakeTrace(100);
  trace.alloc_bytes = 4096;
  trace.alloc_ops = 17;
  trace.peak_alloc_bytes = 2048;
  recorder.Record(trace);
  std::vector<QueryTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].alloc_bytes, 4096u);
  EXPECT_EQ(traces[0].alloc_ops, 17u);
  EXPECT_EQ(traces[0].peak_alloc_bytes, 2048u);
}

}  // namespace
}  // namespace rased
