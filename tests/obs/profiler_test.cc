#include "obs/profiler.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/clock.h"

namespace rased {
namespace {

// ---------------------------------------------------------------------------
// ProfileWindowRing: pure data structure, FakeClock-stamped windows.
// ---------------------------------------------------------------------------

ProfileWindow MakeWindow(FakeClock* clock, int64_t width_micros,
                         uint64_t samples, const std::string& stack) {
  ProfileWindow window;
  window.start_micros = clock->NowMicros();
  clock->Advance(width_micros);
  window.end_micros = clock->NowMicros();
  window.samples = samples;
  window.dropped = 0;
  window.folded[stack] = samples;
  return window;
}

TEST(ProfilerWindowRingTest, EvictsOldestFirstWhenOverBudget) {
  FakeClock clock(1000000);
  // Budget sized for roughly two windows: each window's resident bytes
  // are dominated by its one folded stack plus fixed overhead.
  ProfileWindow probe = MakeWindow(&clock, 1000, 1, "main;work;leaf");
  const size_t one = probe.ResidentBytes();
  ProfileWindowRing ring(2 * one + one / 2);

  ring.Add(MakeWindow(&clock, 1000, 10, "main;work;alpha"));
  ring.Add(MakeWindow(&clock, 1000, 20, "main;work;beta"));
  EXPECT_EQ(ring.num_windows(), 2u);
  ring.Add(MakeWindow(&clock, 1000, 30, "main;work;gamma"));
  // Third window pushes resident bytes over budget: the oldest goes.
  EXPECT_EQ(ring.num_windows(), 2u);
  EXPECT_LE(ring.resident_bytes(), 2 * one + one / 2);

  ProfileWindow merged = ring.Merge(INT64_MIN);
  EXPECT_EQ(merged.samples, 50u);  // alpha evicted, beta+gamma retained
  EXPECT_EQ(merged.folded.count("main;work;alpha"), 0u);
  EXPECT_EQ(merged.folded.at("main;work;beta"), 20u);
  EXPECT_EQ(merged.folded.at("main;work;gamma"), 30u);
}

TEST(ProfilerWindowRingTest, NewestWindowSurvivesEvenOversized) {
  FakeClock clock(0);
  ProfileWindowRing ring(1);  // absurdly small budget
  ring.Add(MakeWindow(&clock, 1000, 7, "main;huge"));
  EXPECT_EQ(ring.num_windows(), 1u);
  EXPECT_EQ(ring.Merge(INT64_MIN).samples, 7u);
}

TEST(ProfilerWindowRingTest, MergeFiltersByOverlapWithTrailingSpan) {
  FakeClock clock(0);
  ProfileWindowRing ring(1 << 20);
  ring.Add(MakeWindow(&clock, 1000, 1, "old"));    // [0, 1000)
  ring.Add(MakeWindow(&clock, 1000, 2, "mid"));    // [1000, 2000)
  ring.Add(MakeWindow(&clock, 1000, 4, "young"));  // [2000, 3000)

  EXPECT_EQ(ring.Merge(INT64_MIN).samples, 7u);
  // Windows whose end precedes the cutoff are excluded; overlap keeps.
  ProfileWindow tail = ring.Merge(1500);
  EXPECT_EQ(tail.samples, 6u);
  EXPECT_EQ(tail.folded.count("old"), 0u);
  EXPECT_EQ(ring.Merge(2500).samples, 4u);
  EXPECT_EQ(ring.Merge(99999).samples, 0u);
}

// ---------------------------------------------------------------------------
// Folded-stack text round trip and per-frame totals.
// ---------------------------------------------------------------------------

TEST(ProfilerFoldedTest, RenderParseRoundTrip) {
  std::map<std::string, uint64_t> folded = {
      {"main;QueryExecutor::Execute;Aggregate", 120},
      {"main;HttpServer::AcceptLoop", 7},
      {"main", 1},
  };
  std::string text = RenderFolded(folded);
  auto parsed = ParseFolded(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), folded);
}

TEST(ProfilerFoldedTest, ParseRejectsLinesWithoutCount) {
  EXPECT_FALSE(ParseFolded("main;work\n").ok());
  EXPECT_FALSE(ParseFolded("main;work notanumber\n").ok());
  auto empty = ParseFolded("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(ProfilerFoldedTest, TopFramesSelfAndCumulative) {
  std::map<std::string, uint64_t> folded = {
      {"a;b", 3},
      {"a;c", 2},
      {"c", 5},
  };
  std::vector<FrameTotals> top = TopFrames(folded, 10);
  ASSERT_EQ(top.size(), 3u);
  // c: cumulative 7 (leaf of a;c plus alone), self 7.
  EXPECT_EQ(top[0].name, "c");
  EXPECT_EQ(top[0].cumulative, 7u);
  EXPECT_EQ(top[0].self, 7u);
  // a: on every "a;*" stack but never on top.
  EXPECT_EQ(top[1].name, "a");
  EXPECT_EQ(top[1].cumulative, 5u);
  EXPECT_EQ(top[1].self, 0u);
  EXPECT_EQ(top[2].name, "b");
  EXPECT_EQ(top[2].cumulative, 3u);
  EXPECT_EQ(top[2].self, 3u);

  EXPECT_EQ(TopFrames(folded, 1).size(), 1u);
}

TEST(ProfilerFoldedTest, RecursiveFramesCountOncePerSample) {
  std::map<std::string, uint64_t> folded = {{"f;f;f", 4}};
  std::vector<FrameTotals> top = TopFrames(folded, 10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].cumulative, 4u);  // not 12: one charge per sample
  EXPECT_EQ(top[0].self, 4u);
}

// ---------------------------------------------------------------------------
// Live profiler: timers, handler, reaper, collectors.
// ---------------------------------------------------------------------------

__attribute__((noinline)) double BurnCpu(int iters) {
  double acc = 0;
  for (int i = 0; i < iters; ++i) acc += static_cast<double>(i) * 1e-9;
  return acc;
}

TEST(ProfilerTest, CollectForSamplesABusyRegisteredThread) {
  ProfilerOptions options;
  ASSERT_TRUE(Profiler::Global()->Start(options).ok());
  std::atomic<bool> stop{false};
  std::atomic<double> sink{0};
  std::thread worker([&] {
    ProfilerThreadScope scope("profiler-test-worker");
    while (!stop.load(std::memory_order_relaxed)) {
      sink.store(BurnCpu(200000), std::memory_order_relaxed);
    }
  });
  auto report = Profiler::Global()->CollectFor(400 * 1000);
  stop.store(true);
  worker.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // A thread spinning through a 400ms window at 99 Hz CPU-time sampling
  // must produce samples; the exact count depends on scheduling.
  EXPECT_GT(report.value().samples, 0u);
  EXPECT_FALSE(report.value().folded.empty());
  Profiler::Global()->Stop();
}

TEST(ProfilerTest, StartIsRefcountedAndCollectFailsWhenStopped) {
  ProfilerOptions options;
  ASSERT_TRUE(Profiler::Global()->Start(options).ok());
  ASSERT_TRUE(Profiler::Global()->Start(options).ok());
  Profiler::Global()->Stop();
  EXPECT_TRUE(Profiler::Global()->running());
  Profiler::Global()->Stop();
  EXPECT_FALSE(Profiler::Global()->running());
  auto report = Profiler::Global()->CollectFor(1000);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsFailedPrecondition());
}

// The SIGPROF disposition is installed once and latched for the life of
// the process — including across fork(). A child that inherits an armed
// CPU timer but an unregistered TLS entry must survive a delivered signal
// (the handler no-ops), not die with the default SIGPROF action.
TEST(ProfilerTest, SigprofHandlerStaysInstalledAfterFork) {
  ProfilerOptions options;
  ASSERT_TRUE(Profiler::Global()->Start(options).ok());
  {
    ProfilerThreadScope scope("profiler-test-fork");
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: only async-signal-safe work. The handler must still be
      // installed (SA_SIGINFO, non-default), and a self-delivered SIGPROF
      // must not kill the process.
      struct sigaction current;
      if (sigaction(SIGPROF, nullptr, &current) != 0) _exit(2);
      if ((current.sa_flags & SA_SIGINFO) == 0) _exit(3);
      if (current.sa_sigaction == nullptr) _exit(4);
      if (kill(getpid(), SIGPROF) != 0) _exit(5);
      _exit(0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child killed by signal "
                                   << WTERMSIG(status);
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  Profiler::Global()->Stop();
}

}  // namespace
}  // namespace rased
