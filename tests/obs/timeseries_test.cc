#include "obs/timeseries.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "util/clock.h"

namespace rased {
namespace {

/// Installs a FakeClock for the test's lifetime and restores the real
/// clock on exit, so a failing assertion cannot leak scripted time into
/// the next test.
class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(int64_t start_micros) : clock_(start_micros) {
    SetClockForTesting(&clock_);
  }
  ~ScopedFakeClock() { SetClockForTesting(nullptr); }

  FakeClock* clock() { return &clock_; }

 private:
  FakeClock clock_;
};

TEST(MetricsHistoryTest, ScriptedLoadYieldsExactPoints) {
  ScopedFakeClock fake(1000000);
  MetricsRegistry registry;
  Counter* requests =
      registry.GetCounter("rased_test_requests_total", "test counter");
  Gauge* lag = registry.GetGauge("rased_test_lag", "test gauge");

  MetricsHistoryOptions options;
  options.sample_interval_micros = 1000000;
  MetricsHistory history(&registry, options);

  // Three samples at t=1s, 2s, 3s with scripted traffic in between.
  requests->Increment(5);
  lag->Set(7);
  history.SampleOnce();
  fake.clock()->Advance(1000000);
  requests->Increment(10);
  lag->Set(-3);  // negative gauge values must round-trip through zigzag
  history.SampleOnce();
  fake.clock()->Advance(1000000);
  requests->Increment(1);
  lag->Set(0);
  history.SampleOnce();

  std::vector<MetricsHistory::Series> counters =
      history.Query("rased_test_requests_total", 0, NowMicros());
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "rased_test_requests_total");
  EXPECT_EQ(counters[0].kind, SampledSeries::Kind::kCounter);
  ASSERT_EQ(counters[0].points.size(), 3u);
  EXPECT_EQ(counters[0].points[0].t_micros, 1000000);
  EXPECT_EQ(counters[0].points[0].values, std::vector<uint64_t>{5});
  EXPECT_EQ(counters[0].points[1].t_micros, 2000000);
  EXPECT_EQ(counters[0].points[1].values, std::vector<uint64_t>{15});
  EXPECT_EQ(counters[0].points[2].t_micros, 3000000);
  EXPECT_EQ(counters[0].points[2].values, std::vector<uint64_t>{16});

  std::vector<MetricsHistory::Series> gauges =
      history.Query("rased_test_lag", 0, NowMicros());
  ASSERT_EQ(gauges.size(), 1u);
  ASSERT_EQ(gauges[0].points.size(), 3u);
  EXPECT_EQ(static_cast<int64_t>(gauges[0].points[0].values[0]), 7);
  EXPECT_EQ(static_cast<int64_t>(gauges[0].points[1].values[0]), -3);
  EXPECT_EQ(static_cast<int64_t>(gauges[0].points[2].values[0]), 0);

  EXPECT_EQ(history.num_samples(), 3u);
  EXPECT_EQ(history.samples_taken(), 3u);
}

TEST(MetricsHistoryTest, HistogramPointsCarryCountSumAndBuckets) {
  ScopedFakeClock fake(0);
  MetricsRegistry registry;
  HistogramOptions bucket_opts;
  bucket_opts.first_bound = 10;
  bucket_opts.growth = 10.0;
  bucket_opts.num_buckets = 3;  // bounds 10, 100, 1000 (+Inf)
  Histogram* latency = registry.GetHistogram("rased_test_micros",
                                             "test histogram", bucket_opts);

  MetricsHistory history(&registry);
  latency->Observe(5);
  latency->Observe(50);
  latency->Observe(5000);
  history.SampleOnce();

  std::vector<MetricsHistory::Series> series =
      history.Query("rased_test_micros", 0, NowMicros());
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].kind, SampledSeries::Kind::kHistogram);
  EXPECT_EQ(series[0].bounds, (std::vector<int64_t>{10, 100, 1000}));
  ASSERT_EQ(series[0].points.size(), 1u);
  // Layout: [count, sum-bits, bucket_0..bucket_2, +Inf bucket].
  const std::vector<uint64_t>& v = series[0].points[0].values;
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 3u);
  EXPECT_EQ(static_cast<int64_t>(v[1]), 5055);
  EXPECT_EQ(v[2], 1u);  // 5 <= 10
  EXPECT_EQ(v[3], 1u);  // 50 <= 100
  EXPECT_EQ(v[4], 0u);
  EXPECT_EQ(v[5], 1u);  // 5000 overflows into +Inf
}

TEST(MetricsHistoryTest, QueryFiltersByFamilyAndWindow) {
  ScopedFakeClock fake(0);
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("rased_test_a_total", "a");
  registry.GetCounter("rased_test_b_total", "b");

  MetricsHistoryOptions options;
  options.sample_interval_micros = 1000000;
  MetricsHistory history(&registry, options);
  for (int i = 0; i < 5; ++i) {
    a->Increment();
    history.SampleOnce();
    fake.clock()->Advance(1000000);
  }

  // Family filter: only the requested family's series come back.
  std::vector<MetricsHistory::Series> only_a =
      history.Query("rased_test_a_total", 0, NowMicros());
  ASSERT_EQ(only_a.size(), 1u);
  EXPECT_EQ(only_a[0].points.size(), 5u);

  // Samples live at t=0..4s; now is 5s. A 2.5s window keeps t=3s, 4s.
  std::vector<MetricsHistory::Series> recent =
      history.Query("rased_test_a_total", 2500000, NowMicros());
  ASSERT_EQ(recent.size(), 1u);
  ASSERT_EQ(recent[0].points.size(), 2u);
  EXPECT_EQ(recent[0].points[0].t_micros, 3000000);
  EXPECT_EQ(recent[0].points[0].values, std::vector<uint64_t>{4});
  EXPECT_EQ(recent[0].points[1].t_micros, 4000000);
  EXPECT_EQ(recent[0].points[1].values, std::vector<uint64_t>{5});

  // Unknown family: no series.
  EXPECT_TRUE(history.Query("rased_no_such_total", 0, NowMicros()).empty());
}

TEST(MetricsHistoryTest, EvictionKeepsBudgetAndTailDecodesExactly) {
  ScopedFakeClock fake(0);
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("rased_test_evict_total", "evicted");

  MetricsHistoryOptions options;
  options.sample_interval_micros = 1000000;
  // Room for only a handful of samples: each costs the 48-byte overhead
  // plus a few varint bytes across the test series + 4 self-series.
  options.ring_byte_budget = 400;
  MetricsHistory history(&registry, options);

  for (int i = 1; i <= 50; ++i) {
    c->Increment(static_cast<uint64_t>(i));  // value = i*(i+1)/2
    history.SampleOnce();
    fake.clock()->Advance(1000000);
  }

  EXPECT_EQ(history.samples_taken(), 50u);
  EXPECT_LT(history.num_samples(), 50u);  // must actually have evicted
  EXPECT_GT(history.num_samples(), 0u);
  EXPECT_LE(history.resident_bytes(), history.ring_byte_budget());

  // The retained suffix must decode to the true counter trajectory:
  // sample at t=(i-1)s carries value i*(i+1)/2.
  std::vector<MetricsHistory::Series> series =
      history.Query("rased_test_evict_total", 0, NowMicros());
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), history.num_samples());
  for (const MetricsHistory::Point& point : series[0].points) {
    const int64_t i = point.t_micros / 1000000 + 1;
    ASSERT_EQ(point.values.size(), 1u);
    EXPECT_EQ(point.values[0], static_cast<uint64_t>(i * (i + 1) / 2))
        << "at t=" << point.t_micros;
  }
  // Newest sample is always retained.
  EXPECT_EQ(series[0].points.back().t_micros, 49000000);
  EXPECT_EQ(series[0].points.back().values[0], 50u * 51u / 2u);
}

TEST(MetricsHistoryTest, LayoutChangeResetsRing) {
  ScopedFakeClock fake(0);
  MetricsRegistry registry;
  registry.GetCounter("rased_test_one_total", "first");

  MetricsHistory history(&registry);
  history.SampleOnce();
  fake.clock()->Advance(1000000);
  history.SampleOnce();
  EXPECT_EQ(history.num_samples(), 2u);

  // A newly registered series changes the flat layout: the ring resets
  // to the next sample rather than mixing incompatible encodings.
  registry.GetCounter("rased_test_two_total", "second");
  fake.clock()->Advance(1000000);
  history.SampleOnce();
  EXPECT_EQ(history.num_samples(), 1u);
  EXPECT_EQ(history.samples_taken(), 3u);

  std::vector<MetricsHistory::Series> series =
      history.Query("rased_test_two_total", 0, NowMicros());
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 1u);
  EXPECT_EQ(series[0].points[0].t_micros, 2000000);
}

TEST(MetricsHistoryTest, StartSamplerTakesOneImmediateSample) {
  ScopedFakeClock fake(0);
  MetricsRegistry registry;
  registry.GetCounter("rased_test_total", "t");

  MetricsHistory history(&registry);
  history.StartSampler();
  // The first sample is synchronous, so a started history is never
  // empty; fake time never advances, so no further samples fall due.
  EXPECT_EQ(history.num_samples(), 1u);
  history.StopSampler();
  EXPECT_EQ(history.num_samples(), 1u);
}

TEST(MetricsHistoryTest, PostSampleHookSeesSampleTimestamp) {
  ScopedFakeClock fake(5000000);
  MetricsRegistry registry;
  registry.GetCounter("rased_test_total", "t");

  MetricsHistory history(&registry);
  std::vector<int64_t> stamps;
  history.SetPostSampleHook(
      [&stamps](int64_t now_micros) { stamps.push_back(now_micros); });
  history.SampleOnce();
  fake.clock()->Advance(1000000);
  history.SampleOnce();
  EXPECT_EQ(stamps, (std::vector<int64_t>{5000000, 6000000}));
}

}  // namespace
}  // namespace rased
