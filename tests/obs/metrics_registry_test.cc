#include "obs/metrics_registry.h"

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(MetricsRegistryTest, CounterIncrementsAndReadsBack) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("rased_test_total", "test counter");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsRegistryTest, HandlesAreStableAndSharedByNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("rased_test_total", "help");
  Counter* b = registry.GetCounter("rased_test_total", "different help");
  EXPECT_EQ(a, b);  // first registration wins; same series, same handle

  MetricLabels fwd{{"file", "index"}, {"op", "read"}};
  MetricLabels rev{{"op", "read"}, {"file", "index"}};
  Counter* l1 = registry.GetCounter("rased_labeled_total", "h", fwd);
  Counter* l2 = registry.GetCounter("rased_labeled_total", "h", rev);
  EXPECT_EQ(l1, l2);  // label order does not create a distinct series
  EXPECT_NE(l1, a);

  Counter* other =
      registry.GetCounter("rased_labeled_total", "h", {{"file", "warehouse"}});
  EXPECT_NE(other, l1);
  EXPECT_EQ(registry.num_series(), 3u);
}

TEST(MetricsRegistryTest, CounterOverflowWrapsModulo64Bits) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("rased_wrap_total", "wraps");
  c->Increment(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(c->value(), std::numeric_limits<uint64_t>::max());
  c->Increment(3);
  EXPECT_EQ(c->value(), 2u);  // max + 3 == 2 (mod 2^64)
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("rased_test_cubes", "gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Set(-5);
  EXPECT_EQ(g->value(), -5);
}

TEST(MetricsRegistryTest, HistogramBucketEdgesAreInclusive) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.first_bound = 10;
  options.growth = 2.0;
  options.num_buckets = 4;
  Histogram* h =
      registry.GetHistogram("rased_test_micros", "edges", options);

  ASSERT_EQ(h->num_finite_buckets(), 4);
  EXPECT_EQ(h->bucket_bound(0), 10);
  EXPECT_EQ(h->bucket_bound(1), 20);
  EXPECT_EQ(h->bucket_bound(2), 40);
  EXPECT_EQ(h->bucket_bound(3), 80);

  h->Observe(10);  // exactly on a bound: le is inclusive -> bucket 0
  h->Observe(11);  // just over -> bucket 1
  h->Observe(80);  // last finite bound -> bucket 3
  h->Observe(81);  // overflow -> +Inf bucket
  h->Observe(-7);  // negative clamps into the first bucket

  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 0u);
  EXPECT_EQ(h->bucket_count(3), 1u);
  EXPECT_EQ(h->bucket_count(4), 1u);  // +Inf
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 10 + 11 + 80 + 81 - 7);
}

TEST(MetricsRegistryTest, HistogramBoundsAreForcedStrictlyIncreasing) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.first_bound = 1;
  options.growth = 1.01;  // rounds to the same bound without the +1 floor
  options.num_buckets = 5;
  Histogram* h = registry.GetHistogram("rased_flat_micros", "flat", options);
  for (int i = 0; i < h->num_finite_buckets(); ++i) {
    EXPECT_EQ(h->bucket_bound(i), i + 1);
  }
}

TEST(MetricsRegistryTest, DefaultHistogramSpansMicrosecondsToMinutes) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("rased_default_micros", "defaults");
  ASSERT_EQ(h->num_finite_buckets(), 30);
  EXPECT_EQ(h->bucket_bound(0), 1);
  EXPECT_EQ(h->bucket_bound(29), int64_t{1} << 29);
}

TEST(MetricsRegistryTest, PrometheusRenderFormat) {
  MetricsRegistry registry;
  registry.GetCounter("rased_reqs_total", "requests", {{"endpoint", "/"}})
      ->Increment(3);
  registry.GetGauge("rased_resident_cubes", "resident")->Set(12);
  HistogramOptions options;
  options.first_bound = 10;
  options.growth = 2.0;
  options.num_buckets = 2;
  Histogram* h = registry.GetHistogram("rased_lat_micros", "latency", options);
  h->Observe(5);
  h->Observe(15);
  h->Observe(100);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP rased_reqs_total requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rased_reqs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("rased_reqs_total{endpoint=\"/\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rased_resident_cubes gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("rased_resident_cubes 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rased_lat_micros histogram\n"),
            std::string::npos);
  // Buckets are cumulative and _count equals the +Inf bucket.
  EXPECT_NE(text.find("rased_lat_micros_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rased_lat_micros_bucket{le=\"20\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rased_lat_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rased_lat_micros_sum 120\n"), std::string::npos);
  EXPECT_NE(text.find("rased_lat_micros_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusEscapesLabelValuesAndHelp) {
  MetricsRegistry registry;
  registry
      .GetCounter("rased_esc_total", "help with \\ and \n newline",
                  {{"q", "a\"b\\c\nd"}})
      ->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP rased_esc_total help with \\\\ and \\n"),
            std::string::npos);
  EXPECT_NE(text.find("rased_esc_total{q=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, TwoRegistriesWithEqualStateRenderIdentically) {
  auto populate = [](MetricsRegistry* registry) {
    // Registration order differs; exposition order must not.
    registry->GetGauge("rased_b_cubes", "b")->Set(4);
    registry->GetCounter("rased_a_total", "a", {{"k", "v2"}})->Increment(2);
    registry->GetCounter("rased_a_total", "a", {{"k", "v1"}})->Increment(1);
  };
  auto populate_reversed = [](MetricsRegistry* registry) {
    registry->GetCounter("rased_a_total", "a", {{"k", "v1"}})->Increment(1);
    registry->GetCounter("rased_a_total", "a", {{"k", "v2"}})->Increment(2);
    registry->GetGauge("rased_b_cubes", "b")->Set(4);
  };
  MetricsRegistry r1, r2;
  populate(&r1);
  populate_reversed(&r2);
  EXPECT_EQ(r1.RenderPrometheus(), r2.RenderPrometheus());
}

// Eight threads hammer one counter, one gauge, and one histogram while a
// reader renders the exposition; totals must come out exact. This is the
// test the TSan stage leans on for the registry hot path.
TEST(MetricsRegistryTest, ConcurrentUpdatesFromEightThreadsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("rased_conc_total", "c");
  Gauge* gauge = registry.GetGauge("rased_conc_cubes", "g");
  Histogram* histogram = registry.GetHistogram("rased_conc_micros", "h");

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread also late-registers its handles: Get* must be safe
      // concurrently with updates and rendering.
      Counter* own = registry.GetCounter("rased_conc_total", "c");
      for (int i = 0; i < kIterations; ++i) {
        own->Increment();
        gauge->Add(t % 2 == 0 ? 1 : -1);
        histogram->Observe(i);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      std::string text = registry.RenderPrometheus();
      EXPECT_NE(text.find("rased_conc_total"), std::string::npos);
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(histogram->sum(), static_cast<int64_t>(kThreads) * kIterations *
                                  (kIterations - 1) / 2);
  uint64_t bucket_total = 0;
  for (int i = 0; i <= histogram->num_finite_buckets(); ++i) {
    bucket_total += histogram->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, histogram->count());
}

TEST(MetricsRegistryTest, ExemplarsTrackWorstObservationPerBucket) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.first_bound = 10;  // buckets: <=10, <=20, <=40, ..., +Inf
  options.num_buckets = 3;
  options.track_exemplars = true;
  Histogram* histogram =
      registry.GetHistogram("rased_exemplar_micros", "h", options);
  ASSERT_TRUE(histogram->tracks_exemplars());

  histogram->Observe(5, 101);    // bucket 0
  histogram->Observe(8, 102);    // bucket 0, worse
  histogram->Observe(3, 103);    // bucket 0, not worse: id 102 must stay
  histogram->Observe(15, 201);   // bucket 1
  histogram->Observe(999, 301);  // +Inf bucket

  std::vector<HistogramExemplar> exemplars = histogram->DrainExemplars();
  ASSERT_EQ(exemplars.size(), 3u);
  EXPECT_EQ(exemplars[0].bucket, 0);
  EXPECT_EQ(exemplars[0].bound, 10);
  EXPECT_EQ(exemplars[0].value, 8);
  EXPECT_EQ(exemplars[0].trace_id, 102u);
  EXPECT_EQ(exemplars[1].bound, 20);
  EXPECT_EQ(exemplars[1].value, 15);
  EXPECT_EQ(exemplars[1].trace_id, 201u);
  EXPECT_EQ(exemplars[2].bound, -1);  // +Inf
  EXPECT_EQ(exemplars[2].value, 999);
  EXPECT_EQ(exemplars[2].trace_id, 301u);

  // Drain resets the slots: nothing until the next observation.
  EXPECT_TRUE(histogram->DrainExemplars().empty());
  histogram->Observe(7, 401);
  std::vector<HistogramExemplar> fresh = histogram->DrainExemplars();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].trace_id, 401u);
}

TEST(MetricsRegistryTest, ExemplarObservationsStillFeedTheHistogram) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.track_exemplars = true;
  Histogram* histogram =
      registry.GetHistogram("rased_exemplar_feed_micros", "h", options);
  histogram->Observe(3, 1);
  histogram->Observe(5, 2);
  EXPECT_EQ(histogram->count(), 2u);
  EXPECT_EQ(histogram->sum(), 8);
}

TEST(MetricsRegistryTest, UntrackedHistogramHasNoExemplars) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("rased_plain_micros", "h");
  EXPECT_FALSE(histogram->tracks_exemplars());
  histogram->Observe(5);
  EXPECT_TRUE(histogram->DrainExemplars().empty());
}

TEST(MetricsRegistryTest, ExemplarsDoNotChangeTheRenderedExposition) {
  // Deterministic rendering is load-bearing (two equal registries render
  // byte-identical documents); exemplars live on a side channel only.
  MetricsRegistry with_exemplars;
  MetricsRegistry without;
  HistogramOptions tracked;
  tracked.track_exemplars = true;
  Histogram* a =
      with_exemplars.GetHistogram("rased_render_micros", "h", tracked);
  Histogram* b = without.GetHistogram("rased_render_micros", "h");
  a->Observe(17, 42);
  b->Observe(17);
  EXPECT_EQ(with_exemplars.RenderPrometheus(), without.RenderPrometheus());
}

}  // namespace
}  // namespace rased
