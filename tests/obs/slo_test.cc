#include "obs/slo.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "util/clock.h"

namespace rased {
namespace {

class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(int64_t start_micros) : clock_(start_micros) {
    SetClockForTesting(&clock_);
  }
  ~ScopedFakeClock() { SetClockForTesting(nullptr); }

  FakeClock* clock() { return &clock_; }

 private:
  FakeClock clock_;
};

constexpr int64_t kSecond = 1000000;

/// Fixture driving a latency objective through a scripted load: requests
/// are "fast" (50ms, inside the 100ms threshold bucket) or "slow" (300ms).
/// Every number below is hand-computed from the burn formula
/// burn = (bad/total) / (1 - target), target 0.9 → error budget 0.1.
class SloTrackerTest : public ::testing::Test {
 protected:
  SloTrackerTest() : fake_(0) {
    HistogramOptions buckets;
    buckets.first_bound = 100000;  // 100ms, 200ms, 400ms (+Inf)
    buckets.growth = 2.0;
    buckets.num_buckets = 3;
    latency_ = registry_.GetHistogram("rased_test_req_micros",
                                      "scripted request latency", buckets);

    MetricsHistoryOptions history_options;
    history_options.sample_interval_micros = kSecond;
    history_ =
        std::make_unique<MetricsHistory>(&registry_, history_options);

    SloOptions slo;
    slo.short_window_micros = 10 * kSecond;
    slo.long_window_micros = 30 * kSecond;
    slo.warning_burn_rate = 1.0;
    slo.burning_burn_rate = 2.0;
    slo.min_events = 5;
    SloObjective objective;
    objective.name = "test_latency";
    objective.kind = SloObjective::Kind::kLatency;
    objective.family = "rased_test_req_micros";
    objective.threshold_micros = 100000;
    objective.target = 0.9;
    slo.objectives = {objective};
    tracker_ = std::make_unique<SloTracker>(history_.get(), &registry_, slo);
  }

  /// One second of traffic: observe, sample at the current fake time,
  /// then advance one second.
  void Second(int fast, int slow) {
    for (int i = 0; i < fast; ++i) latency_->Observe(50000);
    for (int i = 0; i < slow; ++i) latency_->Observe(300000);
    history_->SampleOnce();
    fake_.clock()->Advance(kSecond);
  }

  int64_t BurnMilliGauge(const char* window) {
    return registry_
        .GetGauge("rased_slo_burn_rate", "",
                  {{"objective", "test_latency"}, {"window", window}})
        ->value();
  }

  ScopedFakeClock fake_;
  MetricsRegistry registry_;
  Histogram* latency_ = nullptr;
  std::unique_ptr<MetricsHistory> history_;
  std::unique_ptr<SloTracker> tracker_;
};

TEST_F(SloTrackerTest, DeterministicOkToBurningTransition) {
  // Phase A — ten healthy seconds (samples at t=0..9s, 10 fast each).
  for (int k = 0; k < 10; ++k) Second(/*fast=*/10, /*slow=*/0);
  std::vector<SloTracker::ObjectiveState> states =
      tracker_->Evaluate(10 * kSecond);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].status, SloStatus::kOk);
  // Short window covers t=0..9s: counts 10 → 100, all good.
  EXPECT_EQ(states[0].short_window.total_events, 90u);
  EXPECT_EQ(states[0].short_window.bad_events, 0u);
  EXPECT_EQ(states[0].short_window.burn_rate, 0.0);
  EXPECT_EQ(tracker_->WorstStatus(), SloStatus::kOk);
  EXPECT_EQ(BurnMilliGauge("short"), 0);
  EXPECT_EQ(BurnMilliGauge("long"), 0);

  // Phase B — two all-slow seconds (samples t=10s, 11s). The short
  // window burns past the warning line; the long window, diluted by the
  // healthy era, stays under the burning line.
  for (int k = 0; k < 2; ++k) Second(/*fast=*/0, /*slow=*/10);
  states = tracker_->Evaluate(12 * kSecond);
  EXPECT_EQ(states[0].status, SloStatus::kWarning);
  // Short window keeps t=2..11s: total 120-30=90, bad 20-0=20.
  // burn = (20/90)/0.1 = 2.2222 → 2222 milli.
  EXPECT_EQ(states[0].short_window.total_events, 90u);
  EXPECT_EQ(states[0].short_window.bad_events, 20u);
  EXPECT_EQ(BurnMilliGauge("short"), 2222);
  // Long window keeps everything: total 110, bad 20.
  // burn = (20/110)/0.1 = 1.8181 → 1818 milli, under burning (2.0).
  EXPECT_EQ(states[0].long_window.total_events, 110u);
  EXPECT_EQ(states[0].long_window.bad_events, 20u);
  EXPECT_EQ(BurnMilliGauge("long"), 1818);
  EXPECT_EQ(tracker_->WorstStatus(), SloStatus::kWarning);

  // Phase C — the outage persists through t=19s. Both windows now burn
  // past the burning line: the objective pages.
  for (int k = 0; k < 8; ++k) Second(/*fast=*/0, /*slow=*/10);
  states = tracker_->Evaluate(20 * kSecond);
  EXPECT_EQ(states[0].status, SloStatus::kBurning);
  // Short window keeps t=10..19s: total 90, bad 90 → burn 10.0.
  EXPECT_EQ(states[0].short_window.total_events, 90u);
  EXPECT_EQ(states[0].short_window.bad_events, 90u);
  EXPECT_EQ(BurnMilliGauge("short"), 10000);
  // Long window keeps t=0..19s: total 190, bad 100.
  // burn = (100/190)/0.1 = 5.2631 → 5263 milli.
  EXPECT_EQ(states[0].long_window.total_events, 190u);
  EXPECT_EQ(states[0].long_window.bad_events, 100u);
  EXPECT_EQ(BurnMilliGauge("long"), 5263);
  EXPECT_EQ(tracker_->WorstStatus(), SloStatus::kBurning);
  EXPECT_EQ(registry_.GetGauge("rased_slo_worst_status", "")->value(), 2);
  EXPECT_EQ(registry_
                .GetGauge("rased_slo_status", "",
                          {{"objective", "test_latency"}})
                ->value(),
            2);
}

TEST_F(SloTrackerTest, TooFewEventsNeverPages) {
  // Six slow events, but the windowed count is the delta between the
  // first and last retained sample — 4, under min_events (5) — so the
  // objective must report burn 0 even though every request was slow.
  Second(/*fast=*/0, /*slow=*/2);
  Second(/*fast=*/0, /*slow=*/2);
  Second(/*fast=*/0, /*slow=*/2);
  std::vector<SloTracker::ObjectiveState> states =
      tracker_->Evaluate(3 * kSecond);
  EXPECT_EQ(states[0].status, SloStatus::kOk);
  EXPECT_EQ(states[0].short_window.total_events, 4u);
  EXPECT_EQ(states[0].short_window.bad_events, 4u);
  EXPECT_EQ(states[0].short_window.burn_rate, 0.0);
}

TEST(SloRatioObjectiveTest, CountsOnlyFilteredBadSeries) {
  ScopedFakeClock fake(0);
  MetricsRegistry registry;
  Counter* requests =
      registry.GetCounter("rased_test_requests_total", "all requests");
  Counter* errors_5xx =
      registry.GetCounter("rased_test_responses_total", "responses",
                          {{"class", "5xx"}});
  Counter* oks_2xx = registry.GetCounter("rased_test_responses_total",
                                         "responses", {{"class", "2xx"}});

  MetricsHistoryOptions history_options;
  history_options.sample_interval_micros = kSecond;
  MetricsHistory history(&registry, history_options);

  SloOptions slo;
  slo.short_window_micros = 10 * kSecond;
  slo.long_window_micros = 30 * kSecond;
  slo.burning_burn_rate = 2.0;
  slo.min_events = 5;
  SloObjective objective;
  objective.name = "test_errors";
  objective.kind = SloObjective::Kind::kRatio;
  objective.family = "rased_test_requests_total";
  objective.bad_family = "rased_test_responses_total";
  objective.bad_label_filter = "class=\"5xx\"";
  objective.target = 0.95;  // 5% error budget
  slo.objectives = {objective};
  SloTracker tracker(&history, &registry, slo);

  for (int k = 0; k < 5; ++k) {
    requests->Increment(20);
    errors_5xx->Increment(4);
    oks_2xx->Increment(16);  // matching family but filtered out as good
    history.SampleOnce();
    fake.clock()->Advance(kSecond);
  }

  std::vector<SloTracker::ObjectiveState> states =
      tracker.Evaluate(5 * kSecond);
  ASSERT_EQ(states.size(), 1u);
  // Deltas from t=0 to t=4: total 80, bad (5xx only) 16.
  // burn = (16/80)/0.05 = 4.0 — well past the burning line (2.0) on
  // both windows; the 2xx series never counts as bad.
  EXPECT_EQ(states[0].short_window.total_events, 80u);
  EXPECT_EQ(states[0].short_window.bad_events, 16u);
  EXPECT_EQ(states[0].status, SloStatus::kBurning);
}

TEST(SloTrackerDefaultsTest, DefaultObjectivesCoverLatencyAndErrors) {
  std::vector<SloObjective> defaults = SloTracker::DefaultObjectives();
  ASSERT_EQ(defaults.size(), 2u);
  EXPECT_EQ(defaults[0].name, "query_latency_p99");
  EXPECT_EQ(defaults[0].kind, SloObjective::Kind::kLatency);
  EXPECT_EQ(defaults[0].family, "rased_http_request_micros");
  EXPECT_EQ(defaults[1].name, "http_error_rate");
  EXPECT_EQ(defaults[1].kind, SloObjective::Kind::kRatio);
}

}  // namespace
}  // namespace rased
