#include "obs/request_context.h"

#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace rased {
namespace {

TEST(RequestContextTest, MintedIdsAreNonzeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    uint64_t id = MintTraceId();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  // A 64-bit Rng colliding within 100 draws would be astronomical.
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RequestContextTest, FormatIsSixteenLowercaseHexDigits) {
  EXPECT_EQ(FormatTraceId(0x1), "0000000000000001");
  EXPECT_EQ(FormatTraceId(0xDEADBEEF12345678ULL), "deadbeef12345678");
  EXPECT_EQ(FormatTraceId(UINT64_MAX), "ffffffffffffffff");
}

TEST(RequestContextTest, ParseRoundTripsAndRejectsMalformedIds) {
  for (uint64_t id : {uint64_t{1}, uint64_t{0xABCDEF0123456789ULL},
                      uint64_t{UINT64_MAX}}) {
    Result<uint64_t> parsed = ParseTraceId(FormatTraceId(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), id);
  }
  // Unpadded short forms are accepted (1..16 hex digits).
  Result<uint64_t> short_form = ParseTraceId("ff");
  ASSERT_TRUE(short_form.ok());
  EXPECT_EQ(short_form.value(), 0xFFu);

  EXPECT_FALSE(ParseTraceId("").ok());
  EXPECT_FALSE(ParseTraceId("0").ok());  // zero means "no trace"
  EXPECT_FALSE(ParseTraceId("0000000000000000").ok());
  EXPECT_FALSE(ParseTraceId("xyz").ok());
  EXPECT_FALSE(ParseTraceId("123g").ok());
  EXPECT_FALSE(ParseTraceId("0123456789abcdef0").ok());  // 17 digits
  EXPECT_FALSE(ParseTraceId("12 34").ok());
}

TEST(RequestContextTest, ScopesInstallAndRestoreNested) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    ScopedRequestContext outer(0x1111);
    EXPECT_EQ(CurrentTraceId(), 0x1111u);
    {
      ScopedRequestContext inner(0x2222);
      EXPECT_EQ(CurrentTraceId(), 0x2222u);
    }
    EXPECT_EQ(CurrentTraceId(), 0x1111u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST(RequestContextTest, LogLinesCarryTheScopedTraceId) {
  // Inside a scope the line prefix must carry trace=<16 hex>; outside,
  // the field must be absent entirely.
  ::testing::internal::CaptureStderr();
  {
    ScopedRequestContext scope(0xABC123);
    RASED_LOG(Warning) << "traced line";
  }
  RASED_LOG(Warning) << "untraced line";
  const std::string log = ::testing::internal::GetCapturedStderr();

  const size_t traced = log.find("traced line");
  const size_t untraced = log.find("untraced line", traced + 1);
  ASSERT_NE(traced, std::string::npos);
  ASSERT_NE(untraced, std::string::npos);
  EXPECT_NE(log.substr(0, traced).find("trace=0000000000abc123"),
            std::string::npos);
  EXPECT_EQ(log.substr(traced, untraced - traced).find("trace="),
            std::string::npos);
}

}  // namespace
}  // namespace rased
