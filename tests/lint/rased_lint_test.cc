#include "lint.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace rased_lint {
namespace {

// Each fixture under tests/lint/fixtures/ marks every line where it
// expects a finding with one "WANT[RLxxx]" token per expected finding.
// The driver lints the fixture under a synthetic src/ repo path (so the
// src-scoped observability rules apply) and requires the finding multiset
// to equal the marker multiset exactly — no misses, no extras.

std::string FixturePath(const std::string& name) {
  return std::string(RASED_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

using LineRule = std::pair<int, std::string>;  // (line, "RLxxx")

std::vector<LineRule> ParseWants(const std::string& contents) {
  std::vector<LineRule> wants;
  std::istringstream in(contents);
  std::string text;
  for (int line = 1; std::getline(in, text); ++line) {
    size_t at = 0;
    while ((at = text.find("WANT[", at)) != std::string::npos) {
      size_t close = text.find(']', at);
      if (close == std::string::npos) break;
      wants.emplace_back(line, text.substr(at + 5, close - at - 5));
      at = close;
    }
  }
  std::sort(wants.begin(), wants.end());
  return wants;
}

std::vector<LineRule> Lint(const std::string& name, LintStats* stats) {
  std::string contents = ReadFixture(name);
  std::vector<Finding> findings =
      LintFile(name, "src/fixtures/" + name, contents, stats);
  std::vector<LineRule> got;
  for (const Finding& finding : findings) {
    got.emplace_back(finding.line, finding.rule_id);
  }
  std::sort(got.begin(), got.end());
  return got;
}

void ExpectMatchesMarkers(const std::string& name) {
  LintStats stats;
  std::vector<LineRule> got = Lint(name, &stats);
  std::vector<LineRule> want = ParseWants(ReadFixture(name));
  ASSERT_FALSE(want.empty()) << name << " has no WANT markers";
  EXPECT_EQ(got, want) << "finding mismatch in " << name;
  EXPECT_EQ(stats.suppressed, 0) << name;
}

TEST(RasedLintTest, RawMutex) { ExpectMatchesMarkers("raw_mutex.cc"); }

TEST(RasedLintTest, GuardedField) {
  ExpectMatchesMarkers("guarded_field.h");
}

TEST(RasedLintTest, BlockingUnderLock) {
  ExpectMatchesMarkers("blocking_under_lock.cc");
}

TEST(RasedLintTest, StatusDiscard) {
  ExpectMatchesMarkers("status_discard.cc");
}

TEST(RasedLintTest, NodiscardType) {
  ExpectMatchesMarkers("nodiscard_type.h");
}

TEST(RasedLintTest, MetricName) { ExpectMatchesMarkers("metric_name.cc"); }

TEST(RasedLintTest, MetricInLoop) {
  ExpectMatchesMarkers("metric_in_loop.cc");
}

TEST(RasedLintTest, BannedFunction) {
  ExpectMatchesMarkers("banned_function.cc");
}

TEST(RasedLintTest, IncludeOrder) {
  ExpectMatchesMarkers("include_order.cc");
}

TEST(RasedLintTest, HeaderGuard) { ExpectMatchesMarkers("header_guard.h"); }

TEST(RasedLintTest, BadNolint) { ExpectMatchesMarkers("bad_nolint.cc"); }

TEST(RasedLintTest, SnapshotMember) {
  ExpectMatchesMarkers("snapshot_member.h");
}

TEST(RasedLintTest, VendorIntrinsics) {
  ExpectMatchesMarkers("vendor_intrinsics.cc");
}

TEST(RasedLintTest, RawWallClock) { ExpectMatchesMarkers("wall_clock.cc"); }

TEST(RasedLintTest, SignalHandlerSafety) {
  ExpectMatchesMarkers("signal_handler.cc");
}

// The one legitimate home of intrinsics is exempt by exact path.
TEST(RasedLintTest, VendorIntrinsicsAllowedInKernelTu) {
  std::string contents = ReadFixture("vendor_intrinsics.cc");
  EXPECT_TRUE(LintFile("agg_kernels_avx2.cc", "src/cube/agg_kernels_avx2.cc",
                       contents)
                  .empty());
}

TEST(RasedLintTest, ValidNolintSuppresses) {
  LintStats stats;
  EXPECT_TRUE(Lint("suppressed.cc", &stats).empty());
  EXPECT_EQ(stats.suppressed, 2);
}

TEST(RasedLintTest, CleanFilesPass) {
  for (const char* name : {"clean.h", "clean.cc"}) {
    LintStats stats;
    EXPECT_TRUE(Lint(name, &stats).empty()) << name;
    EXPECT_EQ(stats.suppressed, 0) << name;
  }
}

// The observability rules are scoped to production code: the same fixture
// linted under a tests/ path reports nothing.
TEST(RasedLintTest, MetricRulesOnlyApplyUnderSrc) {
  std::string contents = ReadFixture("metric_name.cc");
  EXPECT_TRUE(
      LintFile("metric_name.cc", "tests/fixtures/metric_name.cc", contents)
          .empty());
}

TEST(RasedLintTest, RuleTableIsOrderedAndUnique) {
  std::set<std::string> ids;
  std::set<std::string> names;
  std::string prev;
  for (const RuleInfo& rule : Rules()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << rule.id;
    EXPECT_TRUE(names.insert(rule.name).second) << rule.name;
    EXPECT_LT(prev, rule.id);
    prev = rule.id;
  }
  EXPECT_EQ(ids.size(), 15u);
}

}  // namespace
}  // namespace rased_lint
