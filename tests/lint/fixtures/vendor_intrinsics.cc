// RL013 fixture: vendor SIMD intrinsics outside the AVX2 kernel TU.
// Both the include and every _mm*/__m* use must be flagged; the portable
// dispatch-table call must not be.

#include <immintrin.h>  // WANT[RL013]

#include <cstdint>

#include "cube/agg_kernels.h"

namespace rased {

uint64_t BadVectorSum(const uint64_t* p) {
  __m256i acc = _mm256_loadu_si256(          // WANT[RL013] WANT[RL013]
      reinterpret_cast<const __m256i*>(p));  // WANT[RL013]
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),  // WANT[RL013] WANT[RL013]
                     acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

uint64_t GoodPortableSum(const uint64_t* p, size_t n) {
  // The dispatch table resolves to AVX2 at runtime when available.
  return kernels::SumRun(p, n);
}

}  // namespace rased
