// Fixture for RL001 raw-mutex. Never compiled; read by rased_lint_test.
#include <mutex>

namespace fixture {

std::mutex bad_mu;  // WANT[RL001]

void Locker() {
  std::lock_guard<std::mutex> hold(bad_mu);  // WANT[RL001] WANT[RL001]
}

struct LegacyHandle {
  pthread_mutex_t raw;  // WANT[RL001]
};

int Lock(LegacyHandle* handle) {
  return pthread_mutex_lock(&handle->raw);  // WANT[RL001]
}

}  // namespace fixture
