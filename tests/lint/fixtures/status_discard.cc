// Fixture for RL004 status-discard. Never compiled.
#include "util/status.h"

namespace fixture {

rased::Status DoWork();

void Caller() {
  int depth = 0;
  (void)DoWork();               // WANT[RL004]
  static_cast<void>(DoWork());  // WANT[RL004]
  (void)depth;                  // discarding a variable, not a call: clean
}

}  // namespace fixture
