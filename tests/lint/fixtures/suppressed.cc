// Fixture proving valid NOLINT-RASED directives silence findings, both
// by rule name and by RLxxx id, on the same line and the line above.
// Expect zero findings and two suppressions. Never compiled.
#include <cstdlib>

namespace fixture {

// NOLINT-RASED(banned-function): fixed seed is deliberate in this demo
int Entropy() { return rand(); }

int Noise() {
  return rand();  // NOLINT-RASED(RL008): proves id-based suppression
}

}  // namespace fixture
