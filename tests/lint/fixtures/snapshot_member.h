// Fixture for RL012 snapshot-member. Never compiled; read by
// rased_lint_test. MVCC catalog snapshots are per-operation pins: storing
// one in a member field keeps its epoch alive for the holder's lifetime
// and blocks reclamation of every later retirement.
#ifndef RASED_FIXTURES_SNAPSHOT_MEMBER_H_
#define RASED_FIXTURES_SNAPSHOT_MEMBER_H_

#include <memory>

#include "index/temporal_index.h"

namespace fixture {

class QueryHelper {
 public:
  explicit QueryHelper(rased::TemporalIndex* index) : index_(index) {}

  // Parameters and locals are the correct way to hold a snapshot: the pin
  // lives for one operation and drains when the call returns.
  void Plan(const rased::CatalogSnapshot& snapshot);
  void Execute() {
    rased::CatalogSnapshot pinned = index_->Snapshot();
    Plan(pinned);
  }

 private:
  rased::TemporalIndex* index_;
  rased::CatalogSnapshot pinned_;  // WANT[RL012]
  std::shared_ptr<const rased::CatalogVersion> version_;  // WANT[RL012]
};

struct CachedPlan {
  int estimated_pages_ = 0;
  rased::CatalogSnapshot snapshot_ = {};  // WANT[RL012]
};

// Type aliases and statics only name the type; nothing is pinned.
class Aliases {
 public:
  using Snapshot = rased::CatalogSnapshot;
  typedef rased::CatalogVersion Version;

 private:
  static const rased::CatalogVersion* last_seen_;
  int generation_ = 0;
};

}  // namespace fixture

#endif  // RASED_FIXTURES_SNAPSHOT_MEMBER_H_
