// Fixture for RL005 nodiscard-type. Never compiled.
#ifndef RASED_FIXTURES_NODISCARD_TYPE_H_
#define RASED_FIXTURES_NODISCARD_TYPE_H_

namespace fixture {

class Status {  // WANT[RL005]
 public:
  int code = 0;
};

class [[nodiscard]] Result {
 public:
  int value = 0;
};

class Other;  // forward declarations are clean

}  // namespace fixture

#endif  // RASED_FIXTURES_NODISCARD_TYPE_H_
