// Fixture for RL009 include-order: the own header sits second and a
// system include trails the project block. Never compiled.
#include <vector>

#include "fixtures/include_order.h"  // WANT[RL009]
#include "util/status.h"

#include <string>  // WANT[RL009]

namespace fixture {}  // namespace fixture
