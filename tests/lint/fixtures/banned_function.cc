// Fixture for RL008 banned-function. Never compiled.
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace fixture {

int Entropy() {
  return rand();  // WANT[RL008]
}

long Now() {
  return time(nullptr);  // WANT[RL008]
}

void Format(char* out) {
  sprintf(out, "%d", 7);  // WANT[RL008]
}

struct Clock {
  long ticks = 0;
};

long MemberCallsAreClean(const Clock& clock, Clock* ptr) {
  return clock.time() + ptr->time();  // member calls are a different time()
}

}  // namespace fixture
