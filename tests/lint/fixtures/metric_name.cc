// Fixture for RL006 metric-name (applies only under src/; the driver
// passes a src/ repo path). Never compiled.
#include "obs/metrics_registry.h"

#include <string>

namespace fixture {

void Register(rased::MetricsRegistry* registry) {
  registry->GetCounter("rased_good_total", "well-formed counter");
  registry->GetHistogram("rased_wait_micros", "well-formed histogram");
  registry->GetGauge("rased_depth", "well-formed gauge");
  registry->GetCounter("rased_bad", "counter without _total");  // WANT[RL006]
  registry->GetGauge("BadName", "not rased_ prefixed");         // WANT[RL006]
  registry->GetHistogram("rased_latency", "no base unit");      // WANT[RL006]
  registry->GetGauge("rased_rows_total", "counter suffix");     // WANT[RL006]
  std::string dynamic = "rased_x_total";
  registry->GetCounter(dynamic, "non-literal name");  // WANT[RL006]
}

}  // namespace fixture
