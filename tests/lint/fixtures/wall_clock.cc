// RL014 fixture: raw std::chrono clocks outside src/util/clock.h. Every
// named-clock identifier must be flagged; chrono durations and the
// util/clock.h seam must not be.

#include <chrono>
#include <cstdint>
#include <thread>

#include "util/clock.h"

namespace rased {

int64_t BadWallMicros() {
  auto now = std::chrono::system_clock::now();  // WANT[RL014]
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

int64_t BadMonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now()  // WANT[RL014]
                 .time_since_epoch())
      .count();
}

int64_t BadBenchTimer() {
  using clock = std::chrono::high_resolution_clock;  // WANT[RL014]
  return clock::now().time_since_epoch().count();
}

int64_t GoodMicros() {
  // Durations without a clock read are fine: sleeping is not timing.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return NowMicros() + NowWallMicros();
}

}  // namespace rased
