// Fixture for RL010 header-guard: guard does not match the repo path.
#ifndef WRONG_GUARD_H  // WANT[RL010]
#define WRONG_GUARD_H

namespace fixture {}  // namespace fixture

#endif  // WRONG_GUARD_H
