// Fixture for RL002 guarded-field. Never compiled; read by rased_lint_test.
#ifndef RASED_FIXTURES_GUARDED_FIELD_H_
#define RASED_FIXTURES_GUARDED_FIELD_H_

#include <atomic>
#include <string>

#include "util/thread_annotations.h"

namespace fixture {

class Tracker {
 public:
  void Add(const std::string& name);

 private:
  mutable rased::Mutex mu_;
  int count_ RASED_GUARDED_BY(mu_) = 0;
  const int capacity_ = 16;
  std::atomic<bool> live_{false};
  std::string seed_ RASED_CONST_AFTER_INIT;
  std::string last_;  // WANT[RL002]
};

// No lock, so nothing here needs annotating.
class Plain {
 private:
  std::string last_;
  int count_ = 0;
};

}  // namespace fixture

#endif  // RASED_FIXTURES_GUARDED_FIELD_H_
