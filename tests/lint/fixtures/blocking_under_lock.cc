// Fixture for RL003 blocking-under-lock. Never compiled.
#include <unistd.h>

#include "util/thread_annotations.h"

namespace fixture {

class Store {
 public:
  void Tick() {
    rased::MutexLock hold(&mu_);
    usleep(100);  // WANT[RL003]
    ++ticks_;
  }

  void After() {
    usleep(100);  // outside any lock scope: clean
  }

 private:
  mutable rased::Mutex mu_;
  int ticks_ RASED_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
