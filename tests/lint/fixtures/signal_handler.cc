// RL015 fixture: async-signal-safety of RASED_SIGNAL_HANDLER functions.
// Banned calls (allocation, stdio, logging, locking) inside an annotated
// body must be flagged; the same calls in ordinary functions, member
// calls that merely share a banned name, and AS-safe syscalls must not.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "util/signal_safety.h"
#include "util/thread_annotations.h"

namespace rased {

struct FakeRing {
  void free(int) {}  // member named like libc free: calls are fine
};

extern FakeRing* g_ring;
extern Mutex g_mu;  // a global at namespace scope is not "inside" a body

RASED_SIGNAL_HANDLER void BadHandler(int signo) {
  char* buf = static_cast<char*>(malloc(16));  // WANT[RL015]
  std::printf("signal %d\n", signo);           // WANT[RL015]
  int* counter = new int(signo);               // WANT[RL015]
  delete counter;                              // WANT[RL015]
  MutexLock lock(&g_mu);                       // WANT[RL015]
  free(buf);                                   // WANT[RL015]
}

RASED_SIGNAL_HANDLER void GoodHandler(int /*signo*/) {
  ScopedErrnoRestore errno_guard;
  timespec now;
  clock_gettime(CLOCK_MONOTONIC, &now);  // AS-safe syscall
  g_ring->free(0);                       // member call, not libc free
}

// A declaration without a body has nothing to scan.
RASED_SIGNAL_HANDLER void DeclaredOnly(int signo);

void OrdinaryFunction() {
  // Outside a handler the usual rules apply; none of these are RL015.
  char* buf = static_cast<char*>(malloc(8));
  std::printf("not a handler\n");
  free(buf);
}

}  // namespace rased
