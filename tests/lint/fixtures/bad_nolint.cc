// Fixture for RL011 bad-nolint. Never compiled.
namespace fixture {

// NOLINT-RASED(no-such-rule): imaginary rule  WANT[RL011]
int a = 0;

// NOLINT-RASED(raw-mutex) missing the reason  WANT[RL011]
int b = 0;

// NOLINT-RASED without a rule list  WANT[RL011]
int c = 0;

}  // namespace fixture
