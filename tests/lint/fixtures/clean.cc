// Fixture: a source file that satisfies every rased-lint rule.
#include "fixtures/clean.h"

#include <string>

#include "util/thread_annotations.h"

namespace fixture {

void Counter::Add(const std::string& name) {
  rased::MutexLock hold(&mu_);
  count_ += static_cast<int>(name.size());
}

}  // namespace fixture
