// Fixture: a header that satisfies every rased-lint rule.
#ifndef RASED_FIXTURES_CLEAN_H_
#define RASED_FIXTURES_CLEAN_H_

#include <string>

#include "util/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void Add(const std::string& name);

 private:
  mutable rased::Mutex mu_;
  int count_ RASED_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

#endif  // RASED_FIXTURES_CLEAN_H_
