// Fixture for RL007 metric-in-loop (applies only under src/). Never
// compiled.
#include "obs/metrics_registry.h"

namespace fixture {

void Hot(rased::MetricsRegistry* registry, int n) {
  rased::Counter* hoisted = registry->GetCounter("rased_ok_total", "clean");
  for (int i = 0; i < n; ++i) {
    registry->GetCounter("rased_busy_total", "busy");  // WANT[RL007]
    hoisted->Increment();
  }
  while (n > 0) {
    registry->GetGauge("rased_depth", "depth");  // WANT[RL007]
    --n;
  }
}

}  // namespace fixture
