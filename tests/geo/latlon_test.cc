#include "geo/latlon.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(LatLonTest, Validity) {
  EXPECT_TRUE((LatLon{0, 0}).IsValid());
  EXPECT_TRUE((LatLon{90, 180}).IsValid());
  EXPECT_TRUE((LatLon{-90, -180}).IsValid());
  EXPECT_FALSE((LatLon{91, 0}).IsValid());
  EXPECT_FALSE((LatLon{0, 181}).IsValid());
  EXPECT_FALSE((LatLon{-90.5, 0}).IsValid());
}

TEST(BoundingBoxTest, ContainsPoint) {
  BoundingBox box{10, 20, 30, 40};
  EXPECT_TRUE(box.Contains(LatLon{20, 30}));
  EXPECT_TRUE(box.Contains(LatLon{10, 20}));  // closed edges
  EXPECT_TRUE(box.Contains(LatLon{30, 40}));
  EXPECT_FALSE(box.Contains(LatLon{9.99, 30}));
  EXPECT_FALSE(box.Contains(LatLon{20, 40.01}));
}

TEST(BoundingBoxTest, ContainsBox) {
  BoundingBox outer{0, 0, 10, 10};
  BoundingBox inner{2, 2, 8, 8};
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(outer));
}

TEST(BoundingBoxTest, Intersects) {
  BoundingBox a{0, 0, 10, 10};
  BoundingBox b{5, 5, 15, 15};
  BoundingBox c{11, 11, 12, 12};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching edges count as intersecting (closed boxes).
  BoundingBox d{10, 0, 20, 10};
  EXPECT_TRUE(a.Intersects(d));
}

TEST(BoundingBoxTest, CenterAndArea) {
  BoundingBox box{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(box.Center().lat, 20);
  EXPECT_DOUBLE_EQ(box.Center().lon, 30);
  EXPECT_DOUBLE_EQ(box.Area(), 400);
  EXPECT_DOUBLE_EQ(BoundingBox::FromPoint(LatLon{1, 2}).Area(), 0);
}

TEST(BoundingBoxTest, EmptyBox) {
  BoundingBox empty = BoundingBox::Empty();
  EXPECT_FALSE(empty.IsValid());
  EXPECT_DOUBLE_EQ(empty.Area(), 0);
}

TEST(BoundingBoxTest, UnionWithEmptyIsIdentity) {
  BoundingBox box{1, 2, 3, 4};
  EXPECT_EQ(box.Union(BoundingBox::Empty()), box);
  EXPECT_EQ(BoundingBox::Empty().Union(box), box);
}

TEST(BoundingBoxTest, UnionCoversBoth) {
  BoundingBox a{0, 0, 1, 1};
  BoundingBox b{5, 5, 6, 6};
  BoundingBox u = a.Union(b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_EQ(u, (BoundingBox{0, 0, 6, 6}));
}

TEST(BoundingBoxTest, ExtendGrowsToPoint) {
  BoundingBox box = BoundingBox::Empty();
  box.Extend(LatLon{5, 5});
  EXPECT_TRUE(box.IsValid());
  EXPECT_EQ(box, BoundingBox::FromPoint(LatLon{5, 5}));
  box.Extend(LatLon{-1, 7});
  EXPECT_TRUE(box.Contains(LatLon{5, 5}));
  EXPECT_TRUE(box.Contains(LatLon{-1, 7}));
  EXPECT_EQ(box, (BoundingBox{-1, 5, 5, 7}));
}

}  // namespace
}  // namespace rased
