#include "geo/rtree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rased {
namespace {

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.SearchIds(BoundingBox{-90, -180, 90, 180}).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SingleInsertAndHit) {
  RTree tree;
  tree.Insert(LatLon{10, 20}, 42);
  EXPECT_EQ(tree.size(), 1u);
  auto hits = tree.SearchIds(BoundingBox{9, 19, 11, 21});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(tree.SearchIds(BoundingBox{50, 50, 60, 60}).empty());
}

TEST(RTreeTest, SplitsGrowHeight) {
  RTree tree(4);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(LatLon{static_cast<double>(i % 10),
                       static_cast<double>(i / 10)},
                static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, BoxEntries) {
  RTree tree;
  tree.Insert(BoundingBox{0, 0, 10, 10}, 1);
  tree.Insert(BoundingBox{20, 20, 30, 30}, 2);
  // A query overlapping only the edge of box 1.
  auto hits = tree.SearchIds(BoundingBox{10, 10, 15, 15});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(RTreeTest, SearchLimitStopsEarly) {
  RTree tree;
  for (int i = 0; i < 50; ++i) {
    tree.Insert(LatLon{1.0, 1.0}, static_cast<uint64_t>(i));
  }
  auto hits = tree.SearchIds(BoundingBox{0, 0, 2, 2}, 7);
  EXPECT_EQ(hits.size(), 7u);
}

TEST(RTreeTest, VisitorEarlyTermination) {
  RTree tree;
  for (int i = 0; i < 20; ++i) {
    tree.Insert(LatLon{1.0, 1.0}, static_cast<uint64_t>(i));
  }
  int visits = 0;
  tree.Search(BoundingBox{0, 0, 2, 2},
              [&visits](uint64_t, const BoundingBox&) {
                ++visits;
                return visits < 5;
              });
  EXPECT_EQ(visits, 5);
}

TEST(RTreeTest, BoundsCoverEverything) {
  RTree tree;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(LatLon{rng.NextDouble() * 180 - 90,
                       rng.NextDouble() * 360 - 180},
                static_cast<uint64_t>(i));
  }
  BoundingBox bounds = tree.bounds();
  auto all = tree.SearchIds(bounds);
  EXPECT_EQ(all.size(), 200u);
}

class RTreeFanoutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeFanoutTest, RandomizedSearchMatchesBruteForce) {
  // Property: for random points and random query boxes, the R-tree returns
  // exactly the brute-force result set, at every fan-out.
  size_t fanout = GetParam();
  RTree tree(fanout);
  Rng rng(1234 + fanout);
  struct Pt {
    LatLon p;
    uint64_t id;
  };
  std::vector<Pt> points;
  for (uint64_t i = 0; i < 500; ++i) {
    LatLon p{rng.NextDouble() * 100, rng.NextDouble() * 100};
    points.push_back({p, i});
    tree.Insert(p, i);
  }
  ASSERT_TRUE(tree.CheckInvariants());

  for (int q = 0; q < 50; ++q) {
    double lat0 = rng.NextDouble() * 100, lon0 = rng.NextDouble() * 100;
    double lat1 = lat0 + rng.NextDouble() * 30;
    double lon1 = lon0 + rng.NextDouble() * 30;
    BoundingBox query{lat0, lon0, lat1, lon1};

    std::set<uint64_t> expected;
    for (const Pt& pt : points) {
      if (query.Contains(pt.p)) expected.insert(pt.id);
    }
    auto hits = tree.SearchIds(query);
    std::set<uint64_t> actual(hits.begin(), hits.end());
    EXPECT_EQ(actual, expected) << "query " << query.ToString();
    EXPECT_EQ(hits.size(), actual.size()) << "duplicate results";
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutTest,
                         ::testing::Values(4, 8, 16, 64));

TEST(RTreeTest, InvariantsHoldDuringIncrementalInserts) {
  RTree tree(6);
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(LatLon{rng.NextDouble() * 10, rng.NextDouble() * 10},
                static_cast<uint64_t>(i));
    if (i % 37 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "after insert " << i;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 300u);
}

TEST(RTreeTest, DuplicatePointsAllRetained) {
  RTree tree(4);
  for (uint64_t i = 0; i < 30; ++i) tree.Insert(LatLon{5, 5}, i);
  auto hits = tree.SearchIds(BoundingBox{5, 5, 5, 5});
  EXPECT_EQ(hits.size(), 30u);
}

TEST(RTreeTest, MoveSemantics) {
  RTree a(4);
  a.Insert(LatLon{1, 1}, 9);
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.SearchIds(BoundingBox{0, 0, 2, 2}).size(), 1u);
}

}  // namespace
}  // namespace rased
