#include "geo/world_map.h"

#include <set>

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(WorldMapTest, DefaultHasPaperScaleZoneCount) {
  WorldMap world(305);
  EXPECT_EQ(world.num_zones(), 305u);
  EXPECT_EQ(world.zone(kZoneUnknown).name, "(unknown)");
}

TEST(WorldMapTest, ContainsPaperExampleCountries) {
  WorldMap world(305);
  // Every country the paper's figures mention must resolve by name.
  for (const char* name :
       {"United States", "India", "Germany", "Brazil", "Mexico", "France",
        "Vietnam", "Singapore", "Qatar"}) {
    EXPECT_TRUE(world.FindByName(name).ok()) << name;
  }
  EXPECT_FALSE(world.FindByName("Atlantis").ok());
}

TEST(WorldMapTest, HasContinentsAndStates) {
  WorldMap world(305);
  int continents = 0, states = 0, countries = 0;
  for (const Zone& z : world.zones()) {
    if (z.kind == ZoneKind::kContinent) ++continents;
    if (z.kind == ZoneKind::kState) ++states;
    if (z.kind == ZoneKind::kCountry) ++countries;
  }
  EXPECT_GE(continents, 6);
  EXPECT_EQ(states, 50);
  EXPECT_GT(countries, 200);
  EXPECT_TRUE(world.FindByName("Minnesota").ok());
  EXPECT_TRUE(world.FindByName("Europe").ok());
}

TEST(WorldMapTest, CountryAtFindsTheRightZone) {
  WorldMap world(305);
  for (const ZoneId id : world.country_ids()) {
    const Zone& z = world.zone(id);
    ZoneId found = world.CountryAt(z.bounds.Center());
    EXPECT_EQ(found, id) << z.name;
  }
}

TEST(WorldMapTest, OceanIsUnknown) {
  WorldMap world(305);
  // Middle of the synthetic Atlantic gap.
  EXPECT_EQ(world.CountryAt(LatLon{40.0, -30.0}), kZoneUnknown);
}

TEST(WorldMapTest, ZonesAtIncludesContinent) {
  WorldMap world(305);
  ZoneId germany = world.FindByName("Germany").value();
  LatLon p = world.zone(germany).bounds.Center();
  WorldMap::ZoneSet zones = world.ZonesAt(p);
  ASSERT_GE(zones.count, 2);
  EXPECT_EQ(zones.ids[0], germany);
  EXPECT_EQ(world.zone(zones.ids[1]).name, "Europe");
}

TEST(WorldMapTest, ZonesAtInsideUsaIncludesState) {
  WorldMap world(305);
  ZoneId usa = world.FindByName("United States").value();
  LatLon p = world.zone(usa).bounds.Center();
  WorldMap::ZoneSet zones = world.ZonesAt(p);
  ASSERT_EQ(zones.count, 3);
  EXPECT_EQ(zones.ids[0], usa);
  EXPECT_EQ(world.zone(zones.ids[1]).name, "North America");
  EXPECT_EQ(world.zone(zones.ids[2]).kind, ZoneKind::kState);
}

TEST(WorldMapTest, ZonesForCountryIgnoresBogusPoint) {
  WorldMap world(305);
  ZoneId germany = world.FindByName("Germany").value();
  // A (0,0) sentinel point must not change the country assignment.
  WorldMap::ZoneSet zones = world.ZonesForCountry(germany, LatLon{0, 0});
  ASSERT_GE(zones.count, 1);
  EXPECT_EQ(zones.ids[0], germany);
  // Unknown stays empty.
  EXPECT_EQ(world.ZonesForCountry(kZoneUnknown, LatLon{0, 0}).count, 0);
}

TEST(WorldMapTest, RandomPointsLandInTheirZone) {
  WorldMap world(305);
  Rng rng(5);
  for (ZoneId id : world.country_ids()) {
    for (int i = 0; i < 3; ++i) {
      LatLon p = world.RandomPointIn(id, rng);
      EXPECT_EQ(world.CountryAt(p), id) << world.zone(id).name;
    }
  }
}

TEST(WorldMapTest, CountryForBBoxUsesCenter) {
  WorldMap world(305);
  ZoneId france = world.FindByName("France").value();
  const BoundingBox& b = world.zone(france).bounds;
  LatLon c = b.Center();
  BoundingBox small{c.lat - 0.01, c.lon - 0.01, c.lat + 0.01, c.lon + 0.01};
  EXPECT_EQ(world.CountryForBBox(small), france);
}

TEST(WorldMapTest, RoadNetworkSizesAggregateToContinent) {
  WorldMap world(305);
  ZoneId germany = world.FindByName("Germany").value();
  ZoneId france = world.FindByName("France").value();
  ZoneId europe = world.FindByName("Europe").value();
  world.SetRoadNetworkSize(germany, 1000);
  world.SetRoadNetworkSize(france, 500);
  EXPECT_EQ(world.zone(europe).road_network_size, 1500u);
  // Updating replaces, not adds.
  world.SetRoadNetworkSize(germany, 2000);
  EXPECT_EQ(world.zone(europe).road_network_size, 2500u);
}

TEST(WorldMapTest, UsaRoadSizeSplitsAcrossStates) {
  WorldMap world(305);
  ZoneId usa = world.FindByName("United States").value();
  world.SetRoadNetworkSize(usa, 5000);
  ZoneId minnesota = world.FindByName("Minnesota").value();
  EXPECT_EQ(world.zone(minnesota).road_network_size, 100u);
}

class ScaledWorldMapTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ScaledWorldMapTest, ExactZoneCountAndDisjointCountries) {
  // Property: any requested zone count is hit exactly, country cells keep
  // a one-to-one point->zone mapping, and the United States survives every
  // scaling (the activity model leans on it).
  size_t target = GetParam();
  WorldMap world(target);
  EXPECT_EQ(world.num_zones(), target);
  EXPECT_TRUE(world.FindByName("United States").ok());

  std::set<std::string> names;
  for (const Zone& z : world.zones()) {
    EXPECT_TRUE(names.insert(z.name).second) << "duplicate " << z.name;
  }
  Rng rng(17);
  for (ZoneId id : world.country_ids()) {
    LatLon p = world.RandomPointIn(id, rng);
    EXPECT_EQ(world.CountryAt(p), id);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, ScaledWorldMapTest,
                         ::testing::Values(16, 32, 64, 128, 305, 400));

}  // namespace
}  // namespace rased
