#include "osm/road_types.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(RoadTypeTableTest, ReservedSlots) {
  RoadTypeTable table(150);
  EXPECT_EQ(table.Name(kRoadTypeNone), "(none)");
  EXPECT_EQ(table.Name(table.other_id()), "other");
  EXPECT_EQ(table.other_id(), 1);
}

TEST(RoadTypeTableTest, CanonicalValuesSeeded) {
  RoadTypeTable table(150);
  RoadTypeId residential = table.Lookup("residential");
  EXPECT_NE(residential, kRoadTypeNone);
  EXPECT_NE(residential, table.other_id());
  EXPECT_EQ(table.Name(residential), "residential");
  EXPECT_NE(table.Lookup("motorway"), table.other_id());
  EXPECT_NE(table.Lookup("footway"), table.other_id());
}

TEST(RoadTypeTableTest, EmptyValueIsNone) {
  RoadTypeTable table(150);
  EXPECT_EQ(table.Intern(""), kRoadTypeNone);
  EXPECT_EQ(table.Lookup(""), kRoadTypeNone);
}

TEST(RoadTypeTableTest, InternGrowsUntilCapacity) {
  RoadTypeTable table(150);
  size_t before = table.size();
  RoadTypeId fresh = table.Intern("hyperloop_track");
  EXPECT_EQ(table.size(), before + 1);
  EXPECT_EQ(table.Name(fresh), "hyperloop_track");
  // Interning again is idempotent.
  EXPECT_EQ(table.Intern("hyperloop_track"), fresh);
  EXPECT_EQ(table.size(), before + 1);
}

TEST(RoadTypeTableTest, OverflowGoesToOtherBucket) {
  RoadTypeTable table(10);  // tiny capacity
  // Fill to capacity.
  while (table.size() < table.capacity()) {
    table.Intern("filler_" + std::to_string(table.size()));
  }
  RoadTypeId id = table.Intern("one_too_many");
  EXPECT_EQ(id, table.other_id());
  EXPECT_EQ(table.size(), table.capacity());
}

TEST(RoadTypeTableTest, LookupUnknownIsOther) {
  RoadTypeTable table(150);
  EXPECT_EQ(table.Lookup("no_such_highway_value"), table.other_id());
}

TEST(RoadTypeTableTest, IdsAreStableAcrossInstances) {
  // Two tables with the same capacity assign the same ids to canonical
  // values — required because cube cells are keyed by these ids.
  RoadTypeTable a(150), b(150);
  for (const std::string& v : RoadTypeTable::CanonicalHighwayValues()) {
    EXPECT_EQ(a.Lookup(v), b.Lookup(v)) << v;
  }
}

TEST(RoadTypeTableTest, CapacityBoundsSeeding) {
  RoadTypeTable small(5);
  EXPECT_EQ(small.size(), 5u);  // (none), other, 3 canonical
  EXPECT_EQ(small.Lookup("motorway"), 2);  // first canonical value
}

}  // namespace
}  // namespace rased
