#include "osm/changeset.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

Changeset MakeChangeset(uint64_t id) {
  Changeset cs;
  cs.id = id;
  cs.created_at = OsmTimestamp{Date::FromYmd(2021, 5, 1), 100};
  cs.closed_at = OsmTimestamp{Date::FromYmd(2021, 5, 1), 86000};
  cs.open = false;
  cs.uid = 9;
  cs.user = "carol";
  cs.num_changes = 12;
  cs.has_bbox = true;
  cs.min_lat = 44.0;
  cs.min_lon = -94.0;
  cs.max_lat = 45.0;
  cs.max_lon = -93.0;
  cs.tags.push_back(Tag{"comment", "fixing roads & stuff"});
  return cs;
}

TEST(ChangesetTest, WriterReaderRoundTrip) {
  ChangesetWriter writer;
  writer.Add(MakeChangeset(100));
  writer.Add(MakeChangeset(101));
  std::string xml = writer.Finish();

  auto parsed = ChangesetReader::ParseAll(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  const Changeset& cs = parsed.value()[0];
  EXPECT_EQ(cs.id, 100u);
  EXPECT_EQ(cs.user, "carol");
  EXPECT_EQ(cs.num_changes, 12u);
  ASSERT_TRUE(cs.has_bbox);
  EXPECT_DOUBLE_EQ(cs.min_lat, 44.0);
  EXPECT_DOUBLE_EQ(cs.max_lon, -93.0);
  ASSERT_EQ(cs.tags.size(), 1u);
  EXPECT_EQ(cs.tags[0].value, "fixing roads & stuff");
}

TEST(ChangesetTest, BBoxCenter) {
  Changeset cs = MakeChangeset(1);
  EXPECT_DOUBLE_EQ(cs.center_lat(), 44.5);
  EXPECT_DOUBLE_EQ(cs.center_lon(), -93.5);
}

TEST(ChangesetTest, MissingBBoxPreserved) {
  Changeset cs;
  cs.id = 7;
  cs.created_at = OsmTimestamp{Date::FromYmd(2021, 5, 1), 0};
  cs.closed_at = cs.created_at;
  cs.has_bbox = false;
  ChangesetWriter writer;
  writer.Add(cs);
  auto parsed = ChangesetReader::ParseAll(writer.Finish());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_FALSE(parsed.value()[0].has_bbox);
}

TEST(ChangesetTest, OpenChangesetHasNoClosedAt) {
  Changeset cs;
  cs.id = 8;
  cs.open = true;
  cs.created_at = OsmTimestamp{Date::FromYmd(2021, 5, 1), 0};
  ChangesetWriter writer;
  writer.Add(cs);
  std::string xml = writer.Finish();
  EXPECT_EQ(xml.find("closed_at"), std::string::npos);
  auto parsed = ChangesetReader::ParseAll(xml);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value()[0].open);
}

TEST(ChangesetTest, ParsesRealWorldShapedFile) {
  const char* xml = R"(<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="planet-dump">
 <changeset id="113000000" created_at="2021-10-27T10:15:30Z"
            closed_at="2021-10-27T10:16:00Z" open="false" user="importer"
            uid="555" min_lat="48.1" min_lon="11.5" max_lat="48.2"
            max_lon="11.6" num_changes="250" comments_count="0">
  <tag k="created_by" v="JOSM/1.5"/>
  <tag k="comment" v="Add sidewalks"/>
 </changeset>
</osm>)";
  auto parsed = ChangesetReader::ParseAll(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].id, 113000000u);
  EXPECT_EQ(parsed.value()[0].num_changes, 250u);
  EXPECT_EQ(parsed.value()[0].tags.size(), 2u);
}

TEST(ChangesetTest, RejectsMissingId) {
  auto parsed = ChangesetReader::ParseAll(
      "<osm><changeset created_at=\"2021-01-01T00:00:00Z\"/></osm>");
  EXPECT_FALSE(parsed.ok());
}

TEST(ChangesetTest, SkipsForeignElements) {
  auto parsed = ChangesetReader::ParseAll(
      "<osm><bound box=\"1,2,3,4\"/>"
      "<changeset id=\"5\" created_at=\"2021-01-01T00:00:00Z\"/></osm>");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().size(), 1u);
}

}  // namespace
}  // namespace rased
