#include "osm/osc.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

Element MakeNode(int64_t id, double lat, double lon) {
  Element e;
  e.type = ElementType::kNode;
  e.meta.id = id;
  e.meta.version = 1;
  e.meta.timestamp = OsmTimestamp{Date::FromYmd(2021, 3, 4), 3600};
  e.meta.changeset = 77;
  e.meta.uid = 5;
  e.meta.user = "alice";
  e.lat = lat;
  e.lon = lon;
  return e;
}

Element MakeWay(int64_t id, std::vector<int64_t> refs) {
  Element e;
  e.type = ElementType::kWay;
  e.meta.id = id;
  e.meta.version = 2;
  e.meta.timestamp = OsmTimestamp{Date::FromYmd(2021, 3, 4), 7200};
  e.meta.changeset = 78;
  e.node_refs = std::move(refs);
  e.tags.push_back(Tag{"highway", "residential"});
  return e;
}

TEST(OscTest, WriterReaderRoundTrip) {
  OscWriter writer;
  writer.Add(ChangeAction::kCreate, MakeNode(1, 45.5, -93.25));
  writer.Add(ChangeAction::kCreate, MakeNode(2, 45.6, -93.26));
  writer.Add(ChangeAction::kModify, MakeWay(10, {1, 2}));
  writer.Add(ChangeAction::kDelete, MakeNode(3, 40.0, -90.0));
  std::string xml = writer.Finish();

  auto changes = OscReader::ParseAll(xml);
  ASSERT_TRUE(changes.ok()) << changes.status().ToString();
  ASSERT_EQ(changes.value().size(), 4u);

  EXPECT_EQ(changes.value()[0].action, ChangeAction::kCreate);
  EXPECT_EQ(changes.value()[0].element.meta.id, 1);
  EXPECT_DOUBLE_EQ(changes.value()[0].element.lat, 45.5);
  EXPECT_EQ(changes.value()[0].element.meta.user, "alice");

  EXPECT_EQ(changes.value()[2].action, ChangeAction::kModify);
  EXPECT_EQ(changes.value()[2].element.type, ElementType::kWay);
  EXPECT_EQ(changes.value()[2].element.node_refs,
            (std::vector<int64_t>{1, 2}));
  ASSERT_NE(changes.value()[2].element.FindTag("highway"), nullptr);
  EXPECT_EQ(*changes.value()[2].element.FindTag("highway"), "residential");

  EXPECT_EQ(changes.value()[3].action, ChangeAction::kDelete);
}

TEST(OscTest, ConsecutiveSameActionsShareBlock) {
  OscWriter writer;
  writer.Add(ChangeAction::kCreate, MakeNode(1, 1, 1));
  writer.Add(ChangeAction::kCreate, MakeNode(2, 2, 2));
  std::string xml = writer.Finish();
  // Only one <create> block should appear.
  size_t first = xml.find("<create>");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(xml.find("<create>", first + 1), std::string::npos);
}

TEST(OscTest, TimestampsRoundTrip) {
  OscWriter writer;
  writer.Add(ChangeAction::kCreate, MakeNode(1, 1, 1));
  auto changes = OscReader::ParseAll(writer.Finish());
  ASSERT_TRUE(changes.ok());
  EXPECT_EQ(changes.value()[0].element.meta.timestamp.ToString(),
            "2021-03-04T01:00:00Z");
}

TEST(OscTest, ParsesRealWorldShapedDiff) {
  const char* xml = R"(<?xml version="1.0" encoding="UTF-8"?>
<osmChange version="0.6" generator="osmosis">
 <create>
  <node id="9000000001" version="1" timestamp="2021-06-01T10:00:00Z"
        uid="42" user="bob" changeset="100" lat="52.5" lon="13.4">
   <tag k="highway" v="crossing"/>
  </node>
 </create>
 <delete>
  <way id="123" version="7" timestamp="2021-06-01T11:00:00Z"
       uid="43" user="eve" changeset="101"/>
 </delete>
</osmChange>)";
  auto changes = OscReader::ParseAll(xml);
  ASSERT_TRUE(changes.ok()) << changes.status().ToString();
  ASSERT_EQ(changes.value().size(), 2u);
  EXPECT_EQ(changes.value()[0].element.meta.id, 9000000001);
  EXPECT_EQ(changes.value()[1].action, ChangeAction::kDelete);
  EXPECT_EQ(changes.value()[1].element.meta.version, 7);
}

TEST(OscTest, EmptyChangeFile) {
  auto changes =
      OscReader::ParseAll("<osmChange version=\"0.6\"></osmChange>");
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes.value().empty());
}

TEST(OscTest, RejectsWrongRoot) {
  auto changes = OscReader::ParseAll("<osm></osm>");
  EXPECT_FALSE(changes.ok());
}

TEST(OscTest, RejectsUnknownBlock) {
  auto changes = OscReader::ParseAll(
      "<osmChange><upsert><node id=\"1\" lat=\"0\" lon=\"0\"/></upsert>"
      "</osmChange>");
  EXPECT_FALSE(changes.ok());
}

TEST(OscTest, CallbackErrorStopsParsing) {
  OscWriter writer;
  writer.Add(ChangeAction::kCreate, MakeNode(1, 1, 1));
  writer.Add(ChangeAction::kCreate, MakeNode(2, 2, 2));
  std::string xml = writer.Finish();
  int seen = 0;
  Status s = OscReader::Parse(xml, [&seen](const OsmChange&) {
    ++seen;
    return Status::Internal("stop");
  });
  EXPECT_TRUE(s.IsInternal());
  EXPECT_EQ(seen, 1);
}

TEST(OscTest, ChangeActionNames) {
  EXPECT_EQ(ChangeActionName(ChangeAction::kCreate), "create");
  EXPECT_EQ(ChangeActionName(ChangeAction::kModify), "modify");
  EXPECT_EQ(ChangeActionName(ChangeAction::kDelete), "delete");
}

}  // namespace
}  // namespace rased
