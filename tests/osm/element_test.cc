#include "osm/element.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(ElementTypeTest, NamesRoundTrip) {
  for (ElementType t : {ElementType::kNode, ElementType::kWay,
                        ElementType::kRelation}) {
    auto parsed = ParseElementType(ElementTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
  EXPECT_FALSE(ParseElementType("polygon").ok());
  EXPECT_FALSE(ParseElementType("").ok());
}

TEST(OsmTimestampTest, ParseAndFormat) {
  auto ts = OsmTimestamp::Parse("2021-07-15T13:45:59Z");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.value().date, Date::FromYmd(2021, 7, 15));
  EXPECT_EQ(ts.value().sec_of_day, 13 * 3600 + 45 * 60 + 59);
  EXPECT_EQ(ts.value().ToString(), "2021-07-15T13:45:59Z");
}

TEST(OsmTimestampTest, Midnight) {
  auto ts = OsmTimestamp::Parse("2006-01-01T00:00:00Z");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.value().sec_of_day, 0);
}

TEST(OsmTimestampTest, RejectsMalformed) {
  EXPECT_FALSE(OsmTimestamp::Parse("2021-07-15").ok());
  EXPECT_FALSE(OsmTimestamp::Parse("2021-07-15 13:45:59Z").ok());
  EXPECT_FALSE(OsmTimestamp::Parse("2021-07-15T25:00:00Z").ok());
  EXPECT_FALSE(OsmTimestamp::Parse("2021-07-15T13:45:59").ok());
  EXPECT_FALSE(OsmTimestamp::Parse("").ok());
}

TEST(OsmTimestampTest, Ordering) {
  auto a = OsmTimestamp::Parse("2021-01-01T00:00:01Z").value();
  auto b = OsmTimestamp::Parse("2021-01-01T00:00:02Z").value();
  auto c = OsmTimestamp::Parse("2021-01-02T00:00:00Z").value();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_FALSE(b < a);
}

TEST(ElementTest, FindTag) {
  Element e;
  e.tags = {{"highway", "residential"}, {"name", "Main St"}};
  ASSERT_NE(e.FindTag("highway"), nullptr);
  EXPECT_EQ(*e.FindTag("highway"), "residential");
  EXPECT_EQ(e.FindTag("surface"), nullptr);
  EXPECT_TRUE(e.IsRoad());
  e.tags.clear();
  EXPECT_FALSE(e.IsRoad());
}

TEST(ElementTest, GeometryDiffersForNodes) {
  Element a, b;
  a.type = b.type = ElementType::kNode;
  a.lat = b.lat = 45.0;
  a.lon = b.lon = -93.0;
  EXPECT_FALSE(Element::GeometryDiffers(a, b));
  b.lat = 45.0001;
  EXPECT_TRUE(Element::GeometryDiffers(a, b));
}

TEST(ElementTest, GeometryDiffersForWays) {
  Element a, b;
  a.type = b.type = ElementType::kWay;
  a.node_refs = {1, 2, 3};
  b.node_refs = {1, 2, 3};
  EXPECT_FALSE(Element::GeometryDiffers(a, b));
  b.node_refs.push_back(4);
  EXPECT_TRUE(Element::GeometryDiffers(a, b));
  b.node_refs = {3, 2, 1};  // order matters for ways
  EXPECT_TRUE(Element::GeometryDiffers(a, b));
}

TEST(ElementTest, GeometryDiffersForRelations) {
  Element a, b;
  a.type = b.type = ElementType::kRelation;
  a.members = {{ElementType::kWay, 10, "outer"}};
  b.members = {{ElementType::kWay, 10, "outer"}};
  EXPECT_FALSE(Element::GeometryDiffers(a, b));
  b.members[0].role = "inner";
  EXPECT_TRUE(Element::GeometryDiffers(a, b));
}

TEST(ElementTest, TagsDifferIgnoresOrder) {
  Element a, b;
  a.tags = {{"k1", "v1"}, {"k2", "v2"}};
  b.tags = {{"k2", "v2"}, {"k1", "v1"}};
  EXPECT_FALSE(Element::TagsDiffer(a, b));
  b.tags.push_back({"k3", "v3"});
  EXPECT_TRUE(Element::TagsDiffer(a, b));
  b.tags = {{"k1", "v1"}, {"k2", "CHANGED"}};
  EXPECT_TRUE(Element::TagsDiffer(a, b));
}

}  // namespace
}  // namespace rased
