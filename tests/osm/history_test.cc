#include "osm/history.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

Element Version(int64_t id, int32_t version, bool visible, double lat) {
  Element e;
  e.type = ElementType::kNode;
  e.meta.id = id;
  e.meta.version = version;
  e.meta.visible = visible;
  e.meta.timestamp = OsmTimestamp{Date::FromYmd(2020, 1, version), 0};
  e.meta.changeset = 50 + static_cast<uint64_t>(version);
  e.lat = lat;
  e.lon = 10.0;
  return e;
}

TEST(HistoryTest, RoundTripsVersionChains) {
  HistoryWriter writer;
  writer.Add(Version(1, 1, true, 45.0));
  writer.Add(Version(1, 2, true, 45.1));
  writer.Add(Version(1, 3, false, 45.1));  // deleted
  writer.Add(Version(2, 1, true, 50.0));
  std::string xml = writer.Finish();

  auto parsed = HistoryReader::ParseAll(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 4u);
  EXPECT_EQ(parsed.value()[0].meta.version, 1);
  EXPECT_EQ(parsed.value()[1].meta.version, 2);
  EXPECT_TRUE(parsed.value()[1].meta.visible);
  EXPECT_FALSE(parsed.value()[2].meta.visible);
  EXPECT_EQ(parsed.value()[3].meta.id, 2);
}

TEST(HistoryTest, DeletedNodeOmitsCoordinates) {
  HistoryWriter writer;
  writer.Add(Version(1, 2, false, 45.0));
  std::string xml = writer.Finish();
  EXPECT_EQ(xml.find("lat="), std::string::npos);
  EXPECT_NE(xml.find("visible=\"false\""), std::string::npos);

  auto parsed = HistoryReader::ParseAll(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed.value()[0].meta.visible);
}

TEST(HistoryTest, VisibleDefaultsToTrue) {
  auto parsed = HistoryReader::ParseAll(
      "<osm><node id=\"1\" version=\"1\" lat=\"1\" lon=\"2\" "
      "timestamp=\"2020-01-01T00:00:00Z\" changeset=\"3\"/></osm>");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value()[0].meta.visible);
}

TEST(HistoryTest, WaysAndRelationsRoundTrip) {
  Element way;
  way.type = ElementType::kWay;
  way.meta.id = 99;
  way.meta.version = 4;
  way.meta.timestamp = OsmTimestamp{Date::FromYmd(2019, 6, 1), 0};
  way.node_refs = {5, 6, 7};
  way.tags.push_back(Tag{"highway", "primary"});

  Element rel;
  rel.type = ElementType::kRelation;
  rel.meta.id = 100;
  rel.meta.version = 1;
  rel.meta.timestamp = OsmTimestamp{Date::FromYmd(2019, 6, 2), 0};
  rel.members.push_back(RelationMember{ElementType::kWay, 99, "outer"});
  rel.members.push_back(RelationMember{ElementType::kNode, 5, ""});

  HistoryWriter writer;
  writer.Add(way);
  writer.Add(rel);
  auto parsed = HistoryReader::ParseAll(writer.Finish());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].node_refs, (std::vector<int64_t>{5, 6, 7}));
  ASSERT_EQ(parsed.value()[1].members.size(), 2u);
  EXPECT_EQ(parsed.value()[1].members[0].ref, 99);
  EXPECT_EQ(parsed.value()[1].members[0].role, "outer");
  EXPECT_EQ(parsed.value()[1].members[0].type, ElementType::kWay);
}

TEST(HistoryTest, RejectsWrongRoot) {
  EXPECT_FALSE(HistoryReader::ParseAll("<osmChange/>").ok());
}

TEST(HistoryTest, SkipsUnknownElements) {
  auto parsed = HistoryReader::ParseAll(
      "<osm><bounds minlat=\"0\"/><node id=\"1\" lat=\"0\" lon=\"0\" "
      "timestamp=\"2020-01-01T00:00:00Z\"/></osm>");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().size(), 1u);
}

TEST(HistoryTest, EmptyHistory) {
  auto parsed = HistoryReader::ParseAll("<osm/>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

}  // namespace
}  // namespace rased
