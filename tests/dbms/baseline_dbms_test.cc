#include "dbms/baseline_dbms.h"

#include <map>

#include <gtest/gtest.h>

#include "io/env.h"
#include "util/random.h"

namespace rased {
namespace {

class BaselineDbmsTest : public ::testing::Test {
 protected:
  DbmsOptions Options(uint64_t pool_bytes = 1 << 20) {
    DbmsOptions options;
    options.dir =
        env::JoinPath(dir_.path(), "dbms-" + std::to_string(counter_++));
    options.device = DeviceModel{100, 100, 0.0};
    options.page_size = 1024;
    options.buffer_pool_bytes = pool_bytes;
    return options;
  }

  static std::vector<UpdateRecord> MakeRecords(int days, int per_day) {
    std::vector<UpdateRecord> records;
    Rng rng(3);
    for (int d = 0; d < days; ++d) {
      for (int i = 0; i < per_day; ++i) {
        UpdateRecord r;
        r.element_type = static_cast<ElementType>(rng.Uniform(3));
        r.date = Date::FromYmd(2021, 1, 1).AddDays(d);
        r.country = static_cast<ZoneId>(1 + rng.Uniform(5));
        r.road_type = static_cast<RoadTypeId>(rng.Uniform(4));
        r.update_type = static_cast<UpdateType>(rng.Uniform(4));
        r.changeset_id = rng.Next();
        records.push_back(r);
      }
    }
    return records;
  }

  TempDir dir_{"dbms-test"};
  int counter_ = 0;
};

TEST_F(BaselineDbmsTest, AppendAndScanCount) {
  auto dbms = BaselineDbms::Create(Options());
  ASSERT_TRUE(dbms.ok()) << dbms.status().ToString();
  auto records = MakeRecords(10, 50);
  ASSERT_TRUE(dbms.value()->Append(records).ok());
  ASSERT_TRUE(dbms.value()->Sync().ok());
  EXPECT_EQ(dbms.value()->num_records(), 500u);

  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 10));
  auto result = dbms.value()->Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0].count, 500u);
}

TEST_F(BaselineDbmsTest, FiltersAndGroupBy) {
  auto dbms = BaselineDbms::Create(Options());
  ASSERT_TRUE(dbms.ok());
  auto records = MakeRecords(20, 40);
  ASSERT_TRUE(dbms.value()->Append(records).ok());

  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 5), Date::FromYmd(2021, 1, 15));
  q.element_types = {ElementType::kWay};
  q.group_country = true;

  // Brute-force expectation.
  std::map<int32_t, uint64_t> expected;
  for (const UpdateRecord& r : records) {
    if (!q.range.Contains(r.date)) continue;
    if (r.element_type != ElementType::kWay) continue;
    ++expected[r.country];
  }

  auto result = dbms.value()->Execute(q);
  ASSERT_TRUE(result.ok());
  std::map<int32_t, uint64_t> actual;
  for (const ResultRow& row : result.value().rows) {
    actual[row.country] = row.count;
  }
  EXPECT_EQ(actual, expected);
}

TEST_F(BaselineDbmsTest, GroupByDate) {
  auto dbms = BaselineDbms::Create(Options());
  ASSERT_TRUE(dbms.ok());
  ASSERT_TRUE(dbms.value()->Append(MakeRecords(5, 10)).ok());
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 5));
  q.group_date = true;
  auto result = dbms.value()->Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 5u);
  for (const ResultRow& row : result.value().rows) {
    EXPECT_TRUE(row.has_date);
    EXPECT_EQ(row.count, 10u);
  }
}

TEST_F(BaselineDbmsTest, ScanCostIsIndependentOfWindow) {
  // The Figure 10 phenomenon: the scan reads every heap page regardless of
  // how narrow the date window is.
  auto dbms = BaselineDbms::Create(Options(/*pool_bytes=*/0));
  ASSERT_TRUE(dbms.ok());
  ASSERT_TRUE(dbms.value()->Append(MakeRecords(30, 100)).ok());
  ASSERT_TRUE(dbms.value()->Sync().ok());

  AnalysisQuery narrow;
  narrow.range =
      DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 1));
  AnalysisQuery wide;
  wide.range =
      DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 30));

  auto r1 = dbms.value()->Execute(narrow);
  auto r2 = dbms.value()->Execute(wide);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().stats.io.page_reads, r2.value().stats.io.page_reads);
  EXPECT_EQ(r1.value().stats.io.page_reads, dbms.value()->num_pages());
}

TEST_F(BaselineDbmsTest, BufferPoolAbsorbsRepeatScans) {
  // Pool big enough for the whole table: second scan is all hits.
  auto dbms = BaselineDbms::Create(Options(/*pool_bytes=*/10 << 20));
  ASSERT_TRUE(dbms.ok());
  ASSERT_TRUE(dbms.value()->Append(MakeRecords(10, 100)).ok());
  ASSERT_TRUE(dbms.value()->Sync().ok());

  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 10));
  ASSERT_TRUE(dbms.value()->Execute(q).ok());
  auto second = dbms.value()->Execute(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().stats.io.page_reads, 0u);
  EXPECT_GT(dbms.value()->buffer_pool()->stats().hits, 0u);
}

TEST_F(BaselineDbmsTest, SmallPoolThrashes) {
  // Pool far smaller than the table: repeat scans keep missing (the
  // PostgreSQL situation in Figure 10 where data >> shared buffers).
  auto dbms = BaselineDbms::Create(Options(/*pool_bytes=*/4 * 1024));
  ASSERT_TRUE(dbms.ok());
  ASSERT_TRUE(dbms.value()->Append(MakeRecords(30, 100)).ok());
  ASSERT_TRUE(dbms.value()->Sync().ok());

  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 30));
  ASSERT_TRUE(dbms.value()->Execute(q).ok());
  auto second = dbms.value()->Execute(q);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.value().stats.io.page_reads,
            dbms.value()->num_pages() / 2);
}

TEST_F(BaselineDbmsTest, PercentageUnsupported) {
  auto dbms = BaselineDbms::Create(Options());
  ASSERT_TRUE(dbms.ok());
  AnalysisQuery q;
  q.percentage = true;
  q.group_country = true;
  EXPECT_TRUE(dbms.value()->Execute(q).status().IsNotSupported());
}

TEST_F(BaselineDbmsTest, PersistsAcrossReopen) {
  DbmsOptions options = Options();
  {
    auto dbms = BaselineDbms::Create(options);
    ASSERT_TRUE(dbms.ok());
    ASSERT_TRUE(dbms.value()->Append(MakeRecords(3, 7)).ok());
  }
  auto dbms = BaselineDbms::Open(options);
  ASSERT_TRUE(dbms.ok()) << dbms.status().ToString();
  EXPECT_EQ(dbms.value()->num_records(), 21u);
}

}  // namespace
}  // namespace rased
