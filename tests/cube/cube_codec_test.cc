#include "cube/cube_codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cube/data_cube.h"
#include "util/random.h"

namespace rased {
namespace {

CubeSchema TinySchema() { return CubeSchema{3, 8, 4, 4}; }  // 384 cells

/// Fills ~density * num_cells cells with random small counts.
DataCube RandomCube(const CubeSchema& schema, double density, uint64_t seed) {
  Rng rng(seed);
  DataCube cube(schema);
  for (uint32_t et = 0; et < schema.num_element_types; ++et) {
    for (uint32_t co = 0; co < schema.num_countries; ++co) {
      for (uint32_t rt = 0; rt < schema.num_road_types; ++rt) {
        for (uint32_t ut = 0; ut < schema.num_update_types; ++ut) {
          if (rng.Bernoulli(density)) {
            cube.Add(et, co, rt, ut, rng.Uniform(1000) + 1);
          }
        }
      }
    }
  }
  return cube;
}

void PutVarint(std::vector<unsigned char>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<unsigned char>(v));
}

/// The densities the adaptive encoder must round-trip: empty, deep-sparse,
/// at the sparse/delta threshold, mid, and fully dense.
constexpr double kDensities[] = {0.0, 0.01, 0.05, 0.10, 0.30, 0.70, 1.0};

TEST(CubeCodecTest, RoundTripAllDensities) {
  const CubeSchema schema = TinySchema();
  for (double density : kDensities) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      DataCube cube = RandomCube(schema, density, seed);
      EncodedCube encoded = EncodedCube::Encode(cube);
      auto decoded = encoded.Decode();
      ASSERT_TRUE(decoded.ok())
          << CubeEncodingName(encoded.encoding()) << " density=" << density
          << ": " << decoded.status().ToString();
      EXPECT_EQ(decoded.value(), cube)
          << CubeEncodingName(encoded.encoding()) << " density=" << density;
      // Adaptive never beats itself with a bigger-than-dense body.
      EXPECT_LE(encoded.body_bytes(), schema.cube_bytes());
    }
  }
}

TEST(CubeCodecTest, AllZeroCubeEncodesTiny) {
  DataCube cube(TinySchema());
  EncodedCube encoded = EncodedCube::Encode(cube);
  EXPECT_EQ(encoded.encoding(), CubeEncoding::kSparseCoo);
  EXPECT_EQ(encoded.body_bytes(), 1u);  // varint nnz = 0
  auto decoded = encoded.Decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), cube);
}

TEST(CubeCodecTest, FullyDenseCubeStillRoundTrips) {
  DataCube cube = RandomCube(TinySchema(), 1.0, 99);
  EncodedCube encoded = EncodedCube::Encode(cube);
  EXPECT_NE(encoded.encoding(), CubeEncoding::kSparseCoo);
  auto decoded = encoded.Decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), cube);
}

TEST(CubeCodecTest, ForceDensePolicyIsDenseRaw) {
  DataCube cube = RandomCube(TinySchema(), 0.02, 7);
  EncodedCube encoded =
      EncodedCube::Encode(cube, CubeEncodingPolicy::kForceDense);
  EXPECT_EQ(encoded.encoding(), CubeEncoding::kDenseRaw);
  EXPECT_EQ(encoded.body_bytes(), TinySchema().cube_bytes());
  auto decoded = encoded.Decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), cube);
}

TEST(CubeCodecTest, SparseChosenBelowThresholdDeltaAbove) {
  EXPECT_EQ(EncodedCube::Encode(RandomCube(TinySchema(), 0.03, 3)).encoding(),
            CubeEncoding::kSparseCoo);
  EncodedCube dense_side = EncodedCube::Encode(RandomCube(TinySchema(), 0.9, 3));
  EXPECT_TRUE(dense_side.encoding() == CubeEncoding::kDeltaVarint ||
              dense_side.encoding() == CubeEncoding::kDenseRaw);
}

TEST(CubeCodecTest, SerializeToWritesParsableHeader) {
  DataCube cube = RandomCube(TinySchema(), 0.05, 11);
  EncodedCube encoded = EncodedCube::Encode(cube);
  std::vector<unsigned char> blob(encoded.SerializedBytes());
  encoded.SerializeTo(blob.data());

  auto header = CubeBlobHeader::Parse(blob.data(), blob.size());
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().encoding, encoded.encoding());
  EXPECT_EQ(header.value().body_bytes, encoded.body_bytes());

  auto decoded = DecodeEncodedCube(TinySchema(), header.value().encoding,
                                   blob.data() + CubeBlobHeader::kBytes,
                                   header.value().body_bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), cube);
}

TEST(CubeCodecTest, HeaderRejectsBadMagicVersionReserved) {
  EncodedCube encoded = EncodedCube::Encode(RandomCube(TinySchema(), 0.05, 2));
  std::vector<unsigned char> blob(encoded.SerializedBytes());
  encoded.SerializeTo(blob.data());

  std::vector<unsigned char> bad = blob;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(CubeBlobHeader::Parse(bad.data(), bad.size()).ok());

  bad = blob;
  bad[4] = 0x7F;  // version
  EXPECT_FALSE(CubeBlobHeader::Parse(bad.data(), bad.size()).ok());

  bad = blob;
  bad[7] = 1;  // reserved must be zero
  EXPECT_FALSE(CubeBlobHeader::Parse(bad.data(), bad.size()).ok());

  // Truncated header.
  EXPECT_FALSE(
      CubeBlobHeader::Parse(blob.data(), CubeBlobHeader::kBytes - 1).ok());
}

TEST(CubeCodecTest, TruncatedBodyIsCorruptionNotUb) {
  const CubeSchema schema = TinySchema();
  for (double density : {0.05, 0.5}) {
    DataCube cube = RandomCube(schema, density, 17);
    EncodedCube encoded = EncodedCube::Encode(cube);
    // Every proper prefix must fail cleanly (truncated varint / short body).
    for (size_t cut : {size_t{0}, size_t{1}, encoded.body_bytes() / 2,
                       encoded.body_bytes() - 1}) {
      if (cut >= encoded.body_bytes()) continue;
      auto decoded =
          DecodeEncodedCube(schema, encoded.encoding(), encoded.body(), cut);
      EXPECT_FALSE(decoded.ok()) << "cut=" << cut << " density=" << density;
    }
  }
}

TEST(CubeCodecTest, TrailingBytesAreCorruption) {
  const CubeSchema schema = TinySchema();
  EncodedCube encoded = EncodedCube::Encode(RandomCube(schema, 0.05, 23));
  std::vector<unsigned char> body(encoded.body(),
                                  encoded.body() + encoded.body_bytes());
  body.push_back(0);
  auto decoded =
      DecodeEncodedCube(schema, encoded.encoding(), body.data(), body.size());
  EXPECT_FALSE(decoded.ok());
}

TEST(CubeCodecTest, OutOfRangeCoordinateIsCorruption) {
  const CubeSchema schema = TinySchema();
  // nnz = 1, first coordinate = num_cells (one past the last valid cell).
  std::vector<unsigned char> body;
  PutVarint(&body, 1);
  PutVarint(&body, schema.num_cells());
  PutVarint(&body, 42);
  auto decoded = DecodeEncodedCube(schema, CubeEncoding::kSparseCoo,
                                   body.data(), body.size());
  EXPECT_FALSE(decoded.ok());

  // Second coordinate walks past the end via its gap.
  body.clear();
  PutVarint(&body, 2);
  PutVarint(&body, schema.num_cells() - 1);  // last valid cell
  PutVarint(&body, 1);
  PutVarint(&body, 0);  // next index = num_cells — out of range
  PutVarint(&body, 1);
  decoded = DecodeEncodedCube(schema, CubeEncoding::kSparseCoo, body.data(),
                              body.size());
  EXPECT_FALSE(decoded.ok());
}

TEST(CubeCodecTest, OverlongVarintIsCorruption) {
  const CubeSchema schema = TinySchema();
  // 11 continuation bytes — more than any 64-bit varint may span.
  std::vector<unsigned char> body(11, 0x80);
  auto decoded = DecodeEncodedCube(schema, CubeEncoding::kSparseCoo,
                                   body.data(), body.size());
  EXPECT_FALSE(decoded.ok());
}

TEST(CubeCodecTest, CorruptBodyFailsAccumulateToo) {
  const CubeSchema schema = TinySchema();
  EncodedCube encoded = EncodedCube::Encode(RandomCube(schema, 0.05, 31));
  CubeSlice slice;
  GroupBySpec spec;
  spec.country = true;
  std::vector<uint64_t> acc(GroupAccumulatorSize(schema, spec), 0);
  Status st =
      AccumulateEncodedSlice(schema, encoded.encoding(), encoded.body(),
                             encoded.body_bytes() - 1, slice, spec, acc.data());
  EXPECT_FALSE(st.ok());
}

TEST(CubeCodecTest, AccumulateSliceMatchesDenseKernel) {
  const CubeSchema schema = TinySchema();
  Rng rng(123);
  for (double density : kDensities) {
    DataCube cube = RandomCube(schema, density, 1000 + rng.Uniform(1 << 20));
    EncodedCube encoded = EncodedCube::Encode(cube);
    for (int trial = 0; trial < 8; ++trial) {
      CubeSlice slice;
      if (rng.Bernoulli(0.5)) slice.countries = {0, 3, 5};
      if (rng.Bernoulli(0.5)) slice.road_types = {1, 2};
      if (rng.Bernoulli(0.3)) slice.update_types = {0};
      slice.Normalize();
      GroupBySpec spec;
      spec.element_type = rng.Bernoulli(0.5);
      spec.country = rng.Bernoulli(0.5);
      spec.road_type = rng.Bernoulli(0.5);
      spec.update_type = rng.Bernoulli(0.5);

      const size_t slots = GroupAccumulatorSize(schema, spec);
      std::vector<uint64_t> want(slots, 0);
      cube.SumSliceInto(slice, spec, want.data());
      std::vector<uint64_t> got(slots, 0);
      ASSERT_TRUE(encoded.AccumulateSlice(slice, spec, got.data()).ok());
      EXPECT_EQ(got, want) << CubeEncodingName(encoded.encoding())
                           << " density=" << density << " trial=" << trial;
    }
  }
}

TEST(CubeCodecTest, BatchBindRejectsCatalogMismatch) {
  const CubeSchema schema = TinySchema();
  EncodedCube encoded = EncodedCube::Encode(RandomCube(schema, 0.05, 41));
  const size_t blob_bytes = encoded.SerializedBytes();
  // Arena padded to an 8-byte multiple, as the pager guarantees.
  EncodedCubeBatch batch(schema, 1, (blob_bytes + 7) & ~size_t{7});
  encoded.SerializeTo(batch.arena());

  // Catalog disagreeing with the on-page header must be Corruption.
  EXPECT_FALSE(
      batch.BindEncoded(0, 0, blob_bytes, CubeEncoding::kDeltaVarint).ok());
  EXPECT_FALSE(
      batch.BindEncoded(0, 0, blob_bytes + 1, encoded.encoding()).ok());

  // The matching bind succeeds and decodes.
  ASSERT_TRUE(batch.BindEncoded(0, 0, blob_bytes, encoded.encoding()).ok());
  EXPECT_EQ(batch.encoding(0), encoded.encoding());
  auto decoded = batch.Decode(0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), encoded.Decode().value());
}

TEST(CubeCodecTest, BatchLegacyDenseBindReadsRawImage) {
  const CubeSchema schema = TinySchema();
  DataCube cube = RandomCube(schema, 0.2, 43);
  EncodedCubeBatch batch(schema, 1, schema.cube_bytes());
  cube.SerializeTo(batch.arena());
  ASSERT_TRUE(batch.BindLegacyDense(0, 0).ok());
  EXPECT_EQ(batch.encoding(0), CubeEncoding::kDenseRaw);
  auto decoded = batch.Decode(0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), cube);
}

}  // namespace
}  // namespace rased
