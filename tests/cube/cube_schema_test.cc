#include "cube/cube_schema.h"

#include <set>

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(CubeSchemaTest, PaperScaleMatchesSectionVIA) {
  CubeSchema s = CubeSchema::PaperScale();
  // 3 x 305 x 150 x 4 — "540,000 precomputed values" per cube, ~4 MB.
  EXPECT_EQ(s.num_cells(), 549000u);
  EXPECT_EQ(s.cube_bytes(), 549000u * 8);
  EXPECT_GT(s.cube_bytes(), 4u << 20);
  EXPECT_LT(s.cube_bytes(), 5u << 20);
}

TEST(CubeSchemaTest, BenchScale) {
  CubeSchema s = CubeSchema::BenchScale();
  EXPECT_EQ(s.num_cells(), 3u * 64 * 32 * 4);
}

TEST(CubeSchemaTest, CellIndexIsBijective) {
  CubeSchema s{2, 3, 4, 2};
  std::set<size_t> seen;
  for (uint32_t e = 0; e < s.num_element_types; ++e) {
    for (uint32_t c = 0; c < s.num_countries; ++c) {
      for (uint32_t r = 0; r < s.num_road_types; ++r) {
        for (uint32_t u = 0; u < s.num_update_types; ++u) {
          size_t idx = s.CellIndex(e, c, r, u);
          EXPECT_LT(idx, s.num_cells());
          EXPECT_TRUE(seen.insert(idx).second) << "collision at " << idx;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), s.num_cells());
}

TEST(CubeSchemaTest, InnermostDimensionIsContiguous) {
  CubeSchema s = CubeSchema::BenchScale();
  size_t base = s.CellIndex(1, 2, 3, 0);
  EXPECT_EQ(s.CellIndex(1, 2, 3, 1), base + 1);
  EXPECT_EQ(s.CellIndex(1, 2, 3, 3), base + 3);
}

TEST(CubeSchemaTest, InRange) {
  CubeSchema s{2, 3, 4, 2};
  EXPECT_TRUE(s.InRange(1, 2, 3, 1));
  EXPECT_FALSE(s.InRange(2, 0, 0, 0));
  EXPECT_FALSE(s.InRange(0, 3, 0, 0));
  EXPECT_FALSE(s.InRange(0, 0, 4, 0));
  EXPECT_FALSE(s.InRange(0, 0, 0, 2));
}

TEST(CubeSchemaTest, Equality) {
  EXPECT_EQ(CubeSchema::PaperScale(), CubeSchema::PaperScale());
  EXPECT_FALSE(CubeSchema::PaperScale() == CubeSchema::BenchScale());
}

TEST(CubeSchemaTest, ToStringIsInformative) {
  std::string s = CubeSchema::BenchScale().ToString();
  EXPECT_NE(s.find("64"), std::string::npos);
  EXPECT_NE(s.find("24576"), std::string::npos);
}

TEST(CubeSliceTest, Unconstrained) {
  CubeSlice slice;
  EXPECT_TRUE(slice.IsUnconstrained());
  slice.countries.push_back(5);
  EXPECT_FALSE(slice.IsUnconstrained());
}

}  // namespace
}  // namespace rased
