#include "cube/data_cube.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rased {
namespace {

CubeSchema TinySchema() { return CubeSchema{3, 5, 4, 4}; }

TEST(DataCubeTest, StartsZeroed) {
  DataCube cube(TinySchema());
  EXPECT_EQ(cube.Total(), 0u);
  EXPECT_EQ(cube.Get(0, 0, 0, 0), 0u);
  EXPECT_EQ(cube.cells().size(), TinySchema().num_cells());
}

TEST(DataCubeTest, AddAndGet) {
  DataCube cube(TinySchema());
  cube.Add(1, 2, 3, 0);
  cube.Add(1, 2, 3, 0, 4);
  EXPECT_EQ(cube.Get(1, 2, 3, 0), 5u);
  EXPECT_EQ(cube.Get(1, 2, 3, 1), 0u);
  EXPECT_EQ(cube.Total(), 5u);
}

TEST(DataCubeTest, MergeIsElementwiseSum) {
  DataCube a(TinySchema()), b(TinySchema());
  a.Add(0, 0, 0, 0, 10);
  a.Add(2, 4, 3, 3, 1);
  b.Add(0, 0, 0, 0, 5);
  b.Add(1, 1, 1, 1, 7);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Get(0, 0, 0, 0), 15u);
  EXPECT_EQ(a.Get(1, 1, 1, 1), 7u);
  EXPECT_EQ(a.Get(2, 4, 3, 3), 1u);
  EXPECT_EQ(a.Total(), 23u);
}

TEST(DataCubeTest, MergeRejectsSchemaMismatch) {
  DataCube a(TinySchema());
  DataCube b(CubeSchema{3, 6, 4, 4});
  EXPECT_TRUE(a.Merge(b).IsInvalidArgument());
}

TEST(DataCubeTest, MergeIsCommutativeProperty) {
  Rng rng(5);
  DataCube a(TinySchema()), b(TinySchema());
  for (int i = 0; i < 200; ++i) {
    a.Add(rng.Uniform(3), rng.Uniform(5), rng.Uniform(4), rng.Uniform(4),
          rng.Uniform(10));
    b.Add(rng.Uniform(3), rng.Uniform(5), rng.Uniform(4), rng.Uniform(4),
          rng.Uniform(10));
  }
  DataCube ab = a;
  ASSERT_TRUE(ab.Merge(b).ok());
  DataCube ba = b;
  ASSERT_TRUE(ba.Merge(a).ok());
  EXPECT_EQ(ab, ba);
}

TEST(DataCubeTest, Clear) {
  DataCube cube(TinySchema());
  cube.Add(1, 1, 1, 1, 9);
  cube.Clear();
  EXPECT_EQ(cube.Total(), 0u);
}

TEST(DataCubeTest, SumSliceUnconstrainedEqualsTotal) {
  DataCube cube(TinySchema());
  cube.Add(0, 1, 2, 3, 11);
  cube.Add(2, 0, 0, 0, 22);
  EXPECT_EQ(cube.SumSlice(CubeSlice{}), cube.Total());
}

TEST(DataCubeTest, SumSliceFiltersEachDimension) {
  DataCube cube(TinySchema());
  cube.Add(0, 1, 2, 3, 1);
  cube.Add(1, 1, 2, 3, 2);
  cube.Add(1, 2, 2, 3, 4);
  cube.Add(1, 2, 3, 3, 8);
  cube.Add(1, 2, 3, 0, 16);

  CubeSlice et_only;
  et_only.element_types = {1};
  EXPECT_EQ(cube.SumSlice(et_only), 2u + 4 + 8 + 16);

  CubeSlice multi;
  multi.element_types = {1};
  multi.countries = {2};
  EXPECT_EQ(cube.SumSlice(multi), 4u + 8 + 16);

  multi.road_types = {3};
  EXPECT_EQ(cube.SumSlice(multi), 8u + 16);

  multi.update_types = {0};
  EXPECT_EQ(cube.SumSlice(multi), 16u);
}

TEST(DataCubeTest, SumSliceWithMultipleValuesPerDimension) {
  DataCube cube(TinySchema());
  cube.Add(0, 0, 0, 0, 1);
  cube.Add(1, 1, 0, 0, 2);
  cube.Add(2, 2, 0, 0, 4);
  CubeSlice slice;
  slice.element_types = {0, 2};
  EXPECT_EQ(cube.SumSlice(slice), 5u);
}

TEST(DataCubeTest, SumSliceIgnoresOutOfRangeSelections) {
  DataCube cube(TinySchema());
  cube.Add(0, 0, 0, 0, 3);
  CubeSlice slice;
  slice.countries = {0, 99};  // 99 is outside the dimension
  EXPECT_EQ(cube.SumSlice(slice), 3u);
}

TEST(DataCubeTest, ForEachCellSkipsZeros) {
  DataCube cube(TinySchema());
  cube.Add(1, 2, 3, 1, 7);
  int visits = 0;
  cube.ForEachCell(CubeSlice{}, [&](uint32_t et, uint32_t co, uint32_t rt,
                                    uint32_t ut, uint64_t count) {
    ++visits;
    EXPECT_EQ(et, 1u);
    EXPECT_EQ(co, 2u);
    EXPECT_EQ(rt, 3u);
    EXPECT_EQ(ut, 1u);
    EXPECT_EQ(count, 7u);
  });
  EXPECT_EQ(visits, 1);
}

TEST(DataCubeTest, SerializeDeserializeRoundTrip) {
  Rng rng(9);
  DataCube cube(TinySchema());
  for (int i = 0; i < 100; ++i) {
    cube.Add(rng.Uniform(3), rng.Uniform(5), rng.Uniform(4), rng.Uniform(4),
             rng.Uniform(1000));
  }
  std::vector<unsigned char> buf(cube.SerializedBytes());
  cube.SerializeTo(buf.data());
  auto back = DataCube::Deserialize(TinySchema(), buf.data(), buf.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), cube);
}

TEST(DataCubeTest, DeserializeRejectsShortBuffer) {
  std::vector<unsigned char> buf(16);
  EXPECT_TRUE(DataCube::Deserialize(TinySchema(), buf.data(), buf.size())
                  .status()
                  .IsCorruption());
}

TEST(CubeSliceTest, NormalizeSortsAndDeduplicates) {
  CubeSlice slice;
  slice.element_types = {2, 0, 2, 1, 0};
  slice.countries = {7, 7, 7};
  slice.road_types = {3};
  slice.Normalize();
  EXPECT_EQ(slice.element_types, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(slice.countries, (std::vector<uint32_t>{7}));
  EXPECT_EQ(slice.road_types, (std::vector<uint32_t>{3}));
  EXPECT_TRUE(slice.update_types.empty());
}

TEST(ConstCubeRefTest, ViewSharesCellsWithoutCopy) {
  DataCube cube(TinySchema());
  cube.Add(1, 2, 3, 1, 7);
  ConstCubeRef view = cube.View();
  EXPECT_EQ(view.cells(), cube.cells().data());
  EXPECT_EQ(view.Get(1, 2, 3, 1), 7u);
  EXPECT_EQ(view.Total(), cube.Total());
  CubeSlice slice;
  slice.element_types = {1};
  EXPECT_EQ(view.SumSlice(slice), cube.SumSlice(slice));
}

TEST(DataCubeTest, FromCellsCopiesCounters) {
  DataCube cube(TinySchema());
  cube.Add(0, 4, 2, 3, 42);
  DataCube copy = DataCube::FromCells(TinySchema(), cube.cells().data());
  EXPECT_EQ(copy, cube);
}

TEST(GroupAccumulatorTest, SizeIsProductOfGroupedDims) {
  CubeSchema schema = TinySchema();  // 3 x 5 x 4 x 4
  EXPECT_EQ(GroupAccumulatorSize(schema, GroupBySpec{}), 1u);
  GroupBySpec co_only;
  co_only.country = true;
  EXPECT_EQ(GroupAccumulatorSize(schema, co_only), 5u);
  GroupBySpec all{true, true, true, true};
  EXPECT_EQ(GroupAccumulatorSize(schema, all), schema.num_cells());
}

// Naive per-cell reference for the dense kernel: the packed slot of a cell
// is its grouped coordinates combined row-major in schema order.
std::vector<uint64_t> NaiveSumSliceInto(const DataCube& cube,
                                        const CubeSlice& slice,
                                        const GroupBySpec& spec) {
  const CubeSchema& s = cube.schema();
  std::vector<uint64_t> acc(GroupAccumulatorSize(s, spec), 0);
  cube.ForEachCell(slice, [&](uint32_t et, uint32_t co, uint32_t rt,
                              uint32_t ut, uint64_t count) {
    size_t slot = 0;
    if (spec.element_type) slot = slot * s.num_element_types + et;
    if (spec.country) slot = slot * s.num_countries + co;
    if (spec.road_type) slot = slot * s.num_road_types + rt;
    if (spec.update_type) slot = slot * s.num_update_types + ut;
    acc[slot] += count;
  });
  return acc;
}

TEST(SumSliceIntoTest, MatchesNaiveOverRandomSlicesAndSpecs) {
  Rng rng(17);
  CubeSchema schema = TinySchema();
  DataCube cube(schema);
  for (int i = 0; i < 300; ++i) {
    cube.Add(rng.Uniform(3), rng.Uniform(5), rng.Uniform(4), rng.Uniform(4),
             rng.Uniform(50));
  }
  for (int trial = 0; trial < 200; ++trial) {
    CubeSlice slice;
    auto pick = [&rng](uint32_t dim, std::vector<uint32_t>* out) {
      if (!rng.Bernoulli(0.5)) return;  // unconstrained
      size_t n = 1 + rng.Uniform(dim);
      for (size_t i = 0; i < n; ++i) {
        out->push_back(static_cast<uint32_t>(rng.Uniform(dim + 1)));  // may
        // include one out-of-range value, which kernels must skip
      }
      std::sort(out->begin(), out->end());
      out->erase(std::unique(out->begin(), out->end()), out->end());
    };
    pick(schema.num_element_types, &slice.element_types);
    pick(schema.num_countries, &slice.countries);
    pick(schema.num_road_types, &slice.road_types);
    pick(schema.num_update_types, &slice.update_types);
    GroupBySpec spec{rng.Bernoulli(0.5), rng.Bernoulli(0.5),
                     rng.Bernoulli(0.5), rng.Bernoulli(0.5)};

    std::vector<uint64_t> expected = NaiveSumSliceInto(cube, slice, spec);
    std::vector<uint64_t> acc(GroupAccumulatorSize(schema, spec), 0);
    cube.SumSliceInto(slice, spec, acc.data());
    EXPECT_EQ(acc, expected) << "trial " << trial;
  }
}

TEST(SumSliceIntoTest, AccumulatesOnTopOfExistingValues) {
  DataCube cube(TinySchema());
  cube.Add(0, 0, 0, 0, 5);
  GroupBySpec spec;
  std::vector<uint64_t> acc{100};
  cube.SumSliceInto(CubeSlice{}, spec, acc.data());
  cube.SumSliceInto(CubeSlice{}, spec, acc.data());
  EXPECT_EQ(acc[0], 110u);
}

TEST(CubeBatchTest, HoldsCubesAtCubeStrideWithZeroCopyViews) {
  CubeSchema schema = TinySchema();
  CubeBatch batch(schema, 3);
  EXPECT_EQ(batch.size(), 3u);

  // Fill each slot through raw_bytes() the way the pager does.
  for (size_t i = 0; i < batch.size(); ++i) {
    DataCube cube(schema);
    cube.Add(1, 1, 1, 1, i + 1);
    cube.SerializeTo(batch.raw_bytes() + i * schema.cube_bytes());
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.cube(i).Get(1, 1, 1, 1), i + 1);
    EXPECT_EQ(batch.cube(i).Total(), i + 1);
    DataCube owned = batch.Materialize(i);
    EXPECT_EQ(owned.Get(1, 1, 1, 1), i + 1);
  }
}

TEST(DataCubeTest, RollupEqualsSumOfChildrenProperty) {
  // Property: merging N random cubes gives a cube whose every slice equals
  // the sum of the children's slices — the invariant behind weekly/monthly/
  // yearly rollups.
  Rng rng(11);
  CubeSchema schema = TinySchema();
  std::vector<DataCube> children;
  for (int c = 0; c < 7; ++c) {
    DataCube cube(schema);
    for (int i = 0; i < 50; ++i) {
      cube.Add(rng.Uniform(3), rng.Uniform(5), rng.Uniform(4),
               rng.Uniform(4), rng.Uniform(20));
    }
    children.push_back(std::move(cube));
  }
  DataCube parent(schema);
  for (const DataCube& child : children) {
    ASSERT_TRUE(parent.Merge(child).ok());
  }
  for (int trial = 0; trial < 20; ++trial) {
    CubeSlice slice;
    if (rng.Bernoulli(0.5)) slice.element_types = {static_cast<uint32_t>(rng.Uniform(3))};
    if (rng.Bernoulli(0.5)) slice.countries = {static_cast<uint32_t>(rng.Uniform(5))};
    if (rng.Bernoulli(0.5)) slice.road_types = {static_cast<uint32_t>(rng.Uniform(4))};
    if (rng.Bernoulli(0.5)) slice.update_types = {static_cast<uint32_t>(rng.Uniform(4))};
    uint64_t sum = 0;
    for (const DataCube& child : children) sum += child.SumSlice(slice);
    EXPECT_EQ(parent.SumSlice(slice), sum);
  }
}

}  // namespace
}  // namespace rased
