#include "cube/agg_kernels.h"

#include <gtest/gtest.h>

#include <vector>

#include "cube/data_cube.h"
#include "util/random.h"

namespace rased {
namespace {

/// Restores the default dispatch even when an assertion fails mid-test.
class ScopedForceScalar {
 public:
  ScopedForceScalar() { kernels::ForceScalarKernelsForTesting(true); }
  ~ScopedForceScalar() { kernels::ForceScalarKernelsForTesting(false); }
};

/// Random counters including values near 2^64 so sums wrap: modulo-2^64
/// addition is where a vector implementation could diverge if it widened
/// or saturated, and where bit-for-bit equality is the whole contract.
std::vector<uint64_t> RandomRun(size_t n, Rng* rng) {
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng->Bernoulli(0.2) ? ~uint64_t{0} - rng->Uniform(1000)
                               : rng->Uniform(1u << 30);
  }
  return v;
}

/// Lengths spanning the short-run inline path, the vector width, odd
/// tails, and runs long enough to exercise unrolled main loops.
constexpr size_t kLengths[] = {0,  1,  3,  4,   5,   15,  16,  17,
                               31, 32, 33, 100, 128, 255, 1024};

TEST(AggKernelsTest, SumRunMatchesScalarBitForBit) {
  Rng rng(7);
  const auto& active = kernels::ActiveKernels();
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<uint64_t> run = RandomRun(n + 3, &rng);
      // Offset by 1 so vector loads start misaligned — alignment must not
      // matter for correctness.
      for (size_t off : {size_t{0}, size_t{1}}) {
        EXPECT_EQ(active.sum_run(run.data() + off, n),
                  kernels::SumRunScalar(run.data() + off, n))
            << "kernel=" << active.name << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(AggKernelsTest, AddRunMatchesScalarBitForBit) {
  Rng rng(11);
  const auto& active = kernels::ActiveKernels();
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<uint64_t> src = RandomRun(n + 1, &rng);
      std::vector<uint64_t> dst_a = RandomRun(n + 1, &rng);
      std::vector<uint64_t> dst_b = dst_a;
      for (size_t off : {size_t{0}, size_t{1}}) {
        if (n + off > src.size()) continue;
        active.add_run(dst_a.data() + off, src.data() + off, n);
        kernels::AddRunScalar(dst_b.data() + off, src.data() + off, n);
        EXPECT_EQ(dst_a, dst_b)
            << "kernel=" << active.name << " n=" << n << " off=" << off;
        dst_a = dst_b;  // resync before the next offset
      }
    }
  }
}

TEST(AggKernelsTest, ForceScalarOverridesDispatch) {
  ScopedForceScalar force;
  EXPECT_STREQ(kernels::ActiveKernels().name, "scalar");
  EXPECT_FALSE(kernels::Avx2Active());
}

TEST(AggKernelsTest, Avx2ActiveImpliesCompiledIn) {
  if (kernels::Avx2Active()) {
    EXPECT_TRUE(kernels::Avx2CompiledIn());
    EXPECT_STREQ(kernels::ActiveKernels().name, "avx2");
  }
}

// End-to-end cross-check through the public aggregation surface: a dense
// group-by over a random cube must produce identical accumulators under
// the dispatched kernels and the forced-scalar reference.
TEST(AggKernelsTest, SumSliceIntoIdenticalUnderBothDispatches) {
  CubeSchema schema{3, 8, 16, 4};  // road_type plane wide enough to vectorize
  Rng rng(13);
  DataCube cube(schema);
  for (int i = 0; i < 2000; ++i) {
    cube.Add(static_cast<uint32_t>(rng.Uniform(schema.num_element_types)),
             static_cast<uint32_t>(rng.Uniform(schema.num_countries)),
             static_cast<uint32_t>(rng.Uniform(schema.num_road_types)),
             static_cast<uint32_t>(rng.Uniform(schema.num_update_types)),
             rng.Uniform(1u << 20) + 1);
  }

  CubeSlice slice;
  for (int mask = 0; mask < 16; ++mask) {
    GroupBySpec spec;
    spec.element_type = (mask & 1) != 0;
    spec.country = (mask & 2) != 0;
    spec.road_type = (mask & 4) != 0;
    spec.update_type = (mask & 8) != 0;
    const size_t slots = GroupAccumulatorSize(schema, spec);

    std::vector<uint64_t> dispatched(slots, 0);
    cube.SumSliceInto(slice, spec, dispatched.data());

    std::vector<uint64_t> scalar(slots, 0);
    {
      ScopedForceScalar force;
      cube.SumSliceInto(slice, spec, scalar.data());
    }
    EXPECT_EQ(dispatched, scalar) << "group-by mask=" << mask;
  }
}

}  // namespace
}  // namespace rased
