#include "synth/update_generator.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "collect/daily_crawler.h"
#include "collect/monthly_crawler.h"

namespace rased {
namespace {

class UpdateGeneratorTest : public ::testing::Test {
 protected:
  UpdateGeneratorTest() : world_(64), road_types_(32) {
    options_.seed = 11;
    options_.base_updates_per_day = 60.0;
    options_.period =
        DateRange(Date::FromYmd(2020, 1, 1), Date::FromYmd(2021, 12, 31));
  }

  SynthOptions options_;
  WorldMap world_;
  RoadTypeTable road_types_;
};

TEST_F(UpdateGeneratorTest, DeterministicPerDay) {
  UpdateGenerator gen(options_, &world_, &road_types_);
  Date d = Date::FromYmd(2020, 7, 1);
  auto a = gen.GenerateDayRecords(d);
  auto b = gen.GenerateDayRecords(d);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST_F(UpdateGeneratorTest, DifferentDaysDiffer) {
  UpdateGenerator gen(options_, &world_, &road_types_);
  auto a = gen.GenerateDayRecords(Date::FromYmd(2020, 7, 1));
  auto b = gen.GenerateDayRecords(Date::FromYmd(2020, 7, 2));
  EXPECT_FALSE(a == b);
}

TEST_F(UpdateGeneratorTest, RecordsAreWellFormed) {
  UpdateGenerator gen(options_, &world_, &road_types_);
  Date d = Date::FromYmd(2021, 3, 15);
  for (const UpdateRecord& r : gen.GenerateDayRecords(d)) {
    EXPECT_EQ(r.date, d);
    EXPECT_NE(r.country, kZoneUnknown);
    EXPECT_LT(r.country, world_.num_zones());
    EXPECT_LT(r.road_type, road_types_.capacity());
    EXPECT_TRUE((LatLon{r.lat, r.lon}).IsValid());
    // The sampled point lies in the claimed country.
    EXPECT_EQ(world_.CountryAt(LatLon{r.lat, r.lon}), r.country);
    EXPECT_GT(r.changeset_id, 0u);
  }
}

TEST_F(UpdateGeneratorTest, ChangesetsGroupConsecutiveRecords) {
  UpdateGenerator gen(options_, &world_, &road_types_);
  auto records = gen.GenerateDayRecords(Date::FromYmd(2021, 3, 15));
  ASSERT_GT(records.size(), 10u);
  std::map<uint64_t, int> first_pos, last_pos;
  for (int i = 0; i < static_cast<int>(records.size()); ++i) {
    uint64_t cs = records[i].changeset_id;
    if (first_pos.find(cs) == first_pos.end()) first_pos[cs] = i;
    last_pos[cs] = i;
  }
  for (const auto& [cs, first] : first_pos) {
    // All records of one changeset are contiguous and one country.
    for (int i = first; i <= last_pos[cs]; ++i) {
      EXPECT_EQ(records[i].changeset_id, cs);
      EXPECT_EQ(records[i].country, records[first].country);
    }
  }
}

TEST_F(UpdateGeneratorTest, DailyArtifactsRoundTripThroughCrawler) {
  // The central synth/crawler consistency property: crawling the generated
  // OSC+changeset files reproduces the directly generated records, modulo
  // the crawler's provisional update classification and the way/relation
  // location being the changeset bbox centre.
  UpdateGenerator gen(options_, &world_, &road_types_);
  Date d = Date::FromYmd(2021, 6, 10);
  auto direct = gen.GenerateDayRecords(d);
  DayArtifacts artifacts = gen.GenerateDayArtifacts(d);

  ChangesetStore changesets;
  ASSERT_TRUE(changesets.AddFromXml(artifacts.changesets_xml).ok());
  DailyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> crawled;
  ASSERT_TRUE(
      crawler.CrawlDiff(artifacts.osc_xml, changesets, &crawled).ok());

  ASSERT_EQ(crawled.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(crawled[i].element_type, direct[i].element_type);
    EXPECT_EQ(crawled[i].date, direct[i].date);
    EXPECT_EQ(crawled[i].country, direct[i].country) << i;
    EXPECT_EQ(crawled[i].road_type, direct[i].road_type);
    EXPECT_EQ(crawled[i].changeset_id, direct[i].changeset_id);
    // Classification is provisional: new stays new, the rest collapse.
    if (direct[i].update_type == UpdateType::kNew) {
      EXPECT_EQ(crawled[i].update_type, UpdateType::kNew);
    } else {
      EXPECT_EQ(crawled[i].update_type, kProvisionalUpdate);
    }
  }
  EXPECT_EQ(crawler.stats().unlocated, 0u);
}

TEST_F(UpdateGeneratorTest, MonthArtifactsRecoverFullClassification) {
  UpdateGenerator gen(options_, &world_, &road_types_);
  Date month = Date::FromYmd(2021, 2, 1);
  MonthArtifacts artifacts = gen.GenerateMonthArtifacts(month);

  ChangesetStore changesets;
  ASSERT_TRUE(changesets.AddFromXml(artifacts.changesets_xml).ok());
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> crawled;
  DateRange window(month, month.month_end());
  ASSERT_TRUE(crawler
                  .CrawlHistory(artifacts.history_xml, changesets, window,
                                &crawled)
                  .ok());

  // Aggregate by (date, update_type) and compare with the direct stream.
  std::map<std::pair<int32_t, int>, int> direct_counts, crawled_counts;
  for (Date d = month; d <= month.month_end(); d = d.next()) {
    for (const UpdateRecord& r : gen.GenerateDayRecords(d)) {
      ++direct_counts[{r.date.days_since_epoch(),
                       static_cast<int>(r.update_type)}];
    }
  }
  for (const UpdateRecord& r : crawled) {
    ++crawled_counts[{r.date.days_since_epoch(),
                      static_cast<int>(r.update_type)}];
  }
  EXPECT_EQ(crawled_counts, direct_counts);
}

TEST_F(UpdateGeneratorTest, MonthHistoryCountryAssignmentsMatch) {
  UpdateGenerator gen(options_, &world_, &road_types_);
  Date month = Date::FromYmd(2021, 2, 1);
  MonthArtifacts artifacts = gen.GenerateMonthArtifacts(month);
  ChangesetStore changesets;
  ASSERT_TRUE(changesets.AddFromXml(artifacts.changesets_xml).ok());
  MonthlyCrawler crawler(&world_, &road_types_);
  std::vector<UpdateRecord> crawled;
  ASSERT_TRUE(crawler
                  .CrawlHistory(artifacts.history_xml, changesets,
                                DateRange(month, month.month_end()), &crawled)
                  .ok());
  std::map<ZoneId, int> direct_by_country, crawled_by_country;
  for (Date d = month; d <= month.month_end(); d = d.next()) {
    for (const UpdateRecord& r : gen.GenerateDayRecords(d)) {
      ++direct_by_country[r.country];
    }
  }
  for (const UpdateRecord& r : crawled) ++crawled_by_country[r.country];
  EXPECT_EQ(crawled_by_country, direct_by_country);
  EXPECT_EQ(crawler.stats().unlocated, 0u);
}

TEST_F(UpdateGeneratorTest, VolumeTracksIntensity) {
  UpdateGenerator gen(options_, &world_, &road_types_);
  // Sum generated volume over a week and compare with the model's mean.
  double expected = 0.0;
  size_t actual = 0;
  for (int i = 0; i < 7; ++i) {
    Date d = Date::FromYmd(2021, 5, 1).AddDays(i);
    for (ZoneId c : world_.country_ids()) {
      expected += gen.activity().CountryIntensity(c, d);
    }
    actual += gen.GenerateDayRecords(d).size();
  }
  EXPECT_NEAR(static_cast<double>(actual), expected,
              5 * std::sqrt(expected) + 10);
}

}  // namespace
}  // namespace rased
