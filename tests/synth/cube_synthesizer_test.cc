#include "synth/cube_synthesizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "index/cube_builder.h"
#include "synth/update_generator.h"

namespace rased {
namespace {

class CubeSynthesizerTest : public ::testing::Test {
 protected:
  CubeSynthesizerTest() : schema_(CubeSchema::BenchScale()), world_(64) {
    options_.seed = 13;
    options_.base_updates_per_day = 80.0;
    options_.period =
        DateRange(Date::FromYmd(2020, 1, 1), Date::FromYmd(2021, 12, 31));
  }

  SynthOptions options_;
  CubeSchema schema_;
  WorldMap world_;
};

TEST_F(CubeSynthesizerTest, Deterministic) {
  CubeSynthesizer synth(options_, &world_, schema_);
  Date d = Date::FromYmd(2020, 4, 1);
  EXPECT_EQ(synth.DayCube(d), synth.DayCube(d));
  EXPECT_FALSE(synth.DayCube(d) == synth.DayCube(d.next()));
}

TEST_F(CubeSynthesizerTest, ContinentCellsEqualSumOfMembers) {
  CubeSynthesizer synth(options_, &world_, schema_);
  DataCube cube = synth.DayCube(Date::FromYmd(2021, 7, 1));
  // For every continent, its slice total equals the sum over member
  // countries — the invariant CubeBuilder maintains on the record path.
  for (const Zone& z : world_.zones()) {
    if (z.kind != ZoneKind::kContinent) continue;
    uint64_t member_sum = 0;
    for (ZoneId c : world_.country_ids()) {
      if (world_.zone(c).parent != z.id) continue;
      CubeSlice slice;
      slice.countries = {c};
      member_sum += cube.SumSlice(slice);
    }
    CubeSlice continent_slice;
    continent_slice.countries = {z.id};
    EXPECT_EQ(cube.SumSlice(continent_slice), member_sum) << z.name;
  }
}

TEST_F(CubeSynthesizerTest, VolumeMatchesActivityModel) {
  CubeSynthesizer synth(options_, &world_, schema_);
  // Total over countries (disjoint partition) should track the model's
  // intensity; continents double it.
  double expected = 0.0;
  uint64_t actual = 0;
  for (int i = 0; i < 10; ++i) {
    Date d = Date::FromYmd(2021, 3, 1).AddDays(i);
    for (ZoneId c : world_.country_ids()) {
      expected += synth.activity().CountryIntensity(c, d);
    }
    CubeSlice countries_only;
    for (ZoneId c : world_.country_ids()) {
      countries_only.countries.push_back(c);
    }
    actual += synth.DayCube(d).SumSlice(countries_only);
  }
  EXPECT_NEAR(static_cast<double>(actual), expected,
              5 * std::sqrt(expected) + 10);
}

TEST_F(CubeSynthesizerTest, StatisticallyMatchesRecordPath) {
  // The fast path and the record path must be statistically
  // indistinguishable: compare per-country mean daily volume over a month.
  RoadTypeTable roads(schema_.num_road_types);
  UpdateGenerator gen(options_, &world_, &roads);
  CubeBuilder builder(schema_, &world_);
  CubeSynthesizer synth(options_, &world_, schema_);

  DataCube from_records(schema_);
  DataCube from_synth(schema_);
  for (int i = 0; i < 28; ++i) {
    Date d = Date::FromYmd(2021, 2, 1).AddDays(i);
    DataCube day = builder.BuildCube(gen.GenerateDayRecords(d));
    ASSERT_TRUE(from_records.Merge(day).ok());
    ASSERT_TRUE(from_synth.Merge(synth.DayCube(d)).ok());
  }
  // Compare aggregate country slices: each is a Poisson sum with the same
  // mean; allow 6 sigma.
  for (ZoneId c : world_.country_ids()) {
    CubeSlice slice;
    slice.countries = {c};
    double a = static_cast<double>(from_records.SumSlice(slice));
    double b = static_cast<double>(from_synth.SumSlice(slice));
    double tol = 6 * std::sqrt(std::max(a, b) + 1) + 6;
    EXPECT_NEAR(a, b, tol) << world_.zone(c).name;
  }
  // Element-type mix agrees too.
  for (uint32_t et = 0; et < 3; ++et) {
    CubeSlice slice;
    slice.element_types = {et};
    double a = static_cast<double>(from_records.SumSlice(slice));
    double b = static_cast<double>(from_synth.SumSlice(slice));
    EXPECT_NEAR(a, b, 6 * std::sqrt(std::max(a, b) + 1) + 6) << "et " << et;
  }
}

TEST_F(CubeSynthesizerTest, PaperScaleSplitsUsaAcrossStates) {
  WorldMap world(305);
  CubeSchema schema = CubeSchema::PaperScale();
  SynthOptions options = options_;
  options.base_updates_per_day = 500.0;
  CubeSynthesizer synth(options, &world, schema);
  DataCube cube = synth.DayCube(Date::FromYmd(2021, 7, 1));

  ZoneId usa = world.FindByName("United States").value();
  CubeSlice usa_slice;
  usa_slice.countries = {usa};
  uint64_t usa_total = cube.SumSlice(usa_slice);
  ASSERT_GT(usa_total, 0u);

  uint64_t state_total = 0;
  for (const Zone& z : world.zones()) {
    if (z.kind != ZoneKind::kState) continue;
    CubeSlice slice;
    slice.countries = {z.id};
    state_total += cube.SumSlice(slice);
  }
  EXPECT_EQ(state_total, usa_total);
}

}  // namespace
}  // namespace rased
