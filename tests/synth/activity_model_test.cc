#include "synth/activity_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rased {
namespace {

class ActivityModelTest : public ::testing::Test {
 protected:
  ActivityModelTest() : world_(305) {
    options_.seed = 7;
    options_.mapathon_rate = 0.0;  // keep intensities smooth for assertions
  }

  SynthOptions options_;
  WorldMap world_;
};

TEST_F(ActivityModelTest, WeightsSumToOneOverCountries) {
  ActivityModel model(options_, &world_, 150);
  double total = 0.0;
  for (ZoneId id : world_.country_ids()) {
    total += model.CountryWeight(id);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ActivityModelTest, CuratedLeadersDominat) {
  ActivityModel model(options_, &world_, 150);
  double us = model.CountryWeight(world_.FindByName("United States").value());
  double india = model.CountryWeight(world_.FindByName("India").value());
  double nauru = model.CountryWeight(world_.FindByName("Nauru").value());
  EXPECT_GT(us, india);
  EXPECT_GT(india, nauru);
  EXPECT_GT(us, 0.05);  // clearly dominant
}

TEST_F(ActivityModelTest, IntensityGrowsOverYears) {
  ActivityModel model(options_, &world_, 150);
  ZoneId germany = world_.FindByName("Germany").value();
  // Average over a full year to cancel seasonality.
  auto yearly_mean = [&](int year) {
    double sum = 0.0;
    int days = 0;
    for (Date d = Date::FromYmd(year, 1, 1); d <= Date::FromYmd(year, 12, 31);
         d = d.next()) {
      sum += model.CountryIntensity(germany, d);
      ++days;
    }
    return sum / days;
  };
  double y2006 = yearly_mean(2006);
  double y2016 = yearly_mean(2016);
  EXPECT_GT(y2016, y2006 * 4);  // 1.22^10 ~ 7.3
}

TEST_F(ActivityModelTest, SeasonalityStaysBounded) {
  SynthOptions no_growth = options_;
  no_growth.growth_per_year = 0.0;  // isolate the seasonal component
  ActivityModel model(no_growth, &world_, 150);
  ZoneId brazil = world_.FindByName("Brazil").value();
  double base = 0.0;
  int n = 0;
  for (Date d = Date::FromYmd(2010, 1, 1); d <= Date::FromYmd(2010, 12, 31);
       d = d.next()) {
    base += model.CountryIntensity(brazil, d);
    ++n;
  }
  base /= n;
  for (Date d = Date::FromYmd(2010, 1, 1); d <= Date::FromYmd(2010, 12, 31);
       d = d.next()) {
    double v = model.CountryIntensity(brazil, d);
    EXPECT_GT(v, base * (1 - options_.seasonality - 0.1));
    EXPECT_LT(v, base * (1 + options_.seasonality + 0.1));
  }
}

TEST_F(ActivityModelTest, MapathonBurstsMultiplyIntensity) {
  SynthOptions bursty = options_;
  bursty.mapathon_rate = 1.0;  // every day bursts
  ActivityModel calm(options_, &world_, 150);
  ActivityModel wild(bursty, &world_, 150);
  ZoneId kenya = world_.FindByName("Kenya").value();
  Date d = Date::FromYmd(2015, 6, 1);
  EXPECT_NEAR(wild.CountryIntensity(kenya, d),
              calm.CountryIntensity(kenya, d) * bursty.mapathon_multiplier,
              1e-9);
}

TEST_F(ActivityModelTest, DeterministicAcrossInstances) {
  ActivityModel a(options_, &world_, 150);
  ActivityModel b(options_, &world_, 150);
  ZoneId id = world_.country_ids()[17];
  for (int i = 0; i < 50; ++i) {
    Date d = Date::FromYmd(2012, 3, 1).AddDays(i * 11);
    EXPECT_EQ(a.CountryIntensity(id, d), b.CountryIntensity(id, d));
  }
}

TEST_F(ActivityModelTest, MixesAreDistributions) {
  ActivityModel model(options_, &world_, 150);
  auto check = [](const std::vector<double>& mix) {
    double sum = 0.0;
    for (double p : mix) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  };
  check(model.element_mix());
  check(model.road_mix());
  check(model.update_mix());
  EXPECT_EQ(model.element_mix().size(), 3u);
  EXPECT_EQ(model.update_mix().size(), 4u);
  EXPECT_EQ(model.road_mix().size(), 150u);
}

TEST_F(ActivityModelTest, WaysDominateElementMix) {
  ActivityModel model(options_, &world_, 150);
  EXPECT_GT(model.element_mix()[1], 0.9);    // ways
  EXPECT_LT(model.element_mix()[2], 0.01);   // relations
}

TEST_F(ActivityModelTest, InitRoadNetworkSizes) {
  ActivityModel model(options_, &world_, 150);
  model.InitRoadNetworkSizes(&world_);
  ZoneId us = world_.FindByName("United States").value();
  ZoneId tuvalu = world_.FindByName("Tuvalu").value();
  EXPECT_GT(world_.zone(us).road_network_size, 1000000u);
  EXPECT_GT(world_.zone(us).road_network_size,
            world_.zone(tuvalu).road_network_size);
  // Continent totals follow.
  ZoneId na = world_.FindByName("North America").value();
  EXPECT_GE(world_.zone(na).road_network_size,
            world_.zone(us).road_network_size);
}

TEST_F(ActivityModelTest, WorksOnScaledWorld) {
  WorldMap small(64);
  ActivityModel model(options_, &small, 32);
  double total = 0.0;
  for (ZoneId id : small.country_ids()) total += model.CountryWeight(id);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(model.road_mix().size(), 32u);
}

}  // namespace
}  // namespace rased
