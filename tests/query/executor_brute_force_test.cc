#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "index/cube_builder.h"
#include "index/temporal_index.h"
#include "io/env.h"
#include "query/query_executor.h"
#include "synth/update_generator.h"
#include "util/random.h"

namespace rased {
namespace {

// The strongest executor correctness property: for randomized queries over
// a randomized record stream, the cube-index answer must equal a
// brute-force scan over the raw records. This checks the whole chain —
// CubeBuilder zone expansion, rollups, the level optimizer's cover, and
// the group-by fold — against first principles.

using GroupKey = std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t>;

std::map<GroupKey, uint64_t> BruteForce(
    const std::vector<UpdateRecord>& records, const AnalysisQuery& q,
    const WorldMap& world) {
  auto matches = [](auto&& list, auto value) {
    if (list.empty()) return true;
    for (auto v : list) {
      if (v == value) return true;
    }
    return false;
  };
  std::map<GroupKey, uint64_t> groups;
  for (const UpdateRecord& r : records) {
    if (!q.range.empty() && !q.range.Contains(r.date)) continue;
    if (!matches(q.element_types, r.element_type)) continue;
    if (!matches(q.road_types, r.road_type)) continue;
    if (!matches(q.update_types, r.update_type)) continue;
    // Country-dimension semantics mirror the cube exactly: a record
    // increments the cell of every containing zone (country, continent,
    // state). With no filter, the default partition counts the record
    // once under its own country; with a filter, the record contributes
    // once per *distinct* listed zone that contains it (a record can
    // match both "Germany" and "Europe" if both are listed, but IN-lists
    // are sets: naming Germany twice must not double-count).
    std::vector<int32_t> country_keys;
    if (q.countries.empty()) {
      country_keys.push_back(q.group_country
                                 ? static_cast<int32_t>(r.country)
                                 : ResultRow::kNoGroup);
    } else {
      std::vector<ZoneId> wanted_set(q.countries);
      std::sort(wanted_set.begin(), wanted_set.end());
      wanted_set.erase(std::unique(wanted_set.begin(), wanted_set.end()),
                       wanted_set.end());
      WorldMap::ZoneSet zones =
          world.ZonesForCountry(r.country, LatLon{r.lat, r.lon});
      for (ZoneId wanted : wanted_set) {
        for (int i = 0; i < zones.count; ++i) {
          if (zones.ids[i] == wanted) {
            country_keys.push_back(q.group_country
                                       ? static_cast<int32_t>(wanted)
                                       : ResultRow::kNoGroup);
          }
        }
      }
      if (country_keys.empty()) continue;
    }
    for (int32_t country_key : country_keys) {
      GroupKey gk{q.group_element_type ? static_cast<int32_t>(r.element_type)
                                       : ResultRow::kNoGroup,
                  q.group_date ? r.date.days_since_epoch()
                               : ResultRow::kNoGroup,
                  country_key,
                  q.group_road_type ? static_cast<int32_t>(r.road_type)
                                    : ResultRow::kNoGroup,
                  q.group_update_type ? static_cast<int32_t>(r.update_type)
                                      : ResultRow::kNoGroup};
      groups[gk] += 1;
    }
  }
  return groups;
}

TEST(ExecutorBruteForceTest, RandomQueriesMatchRecordScan) {
  TempDir dir("brute-force");
  CubeSchema schema = CubeSchema::BenchScale();
  WorldMap world(schema.num_countries);
  RoadTypeTable roads(schema.num_road_types);

  SynthOptions synth;
  synth.seed = 4242;
  synth.base_updates_per_day = 80.0;
  synth.period = DateRange(Date::FromYmd(2021, 1, 1),
                           Date::FromYmd(2021, 3, 31));
  UpdateGenerator gen(synth, &world, &roads);

  TemporalIndexOptions options;
  options.schema = schema;
  options.dir = env::JoinPath(dir.path(), "idx");
  options.device = DeviceModel::None();
  auto index = TemporalIndex::Create(options);
  ASSERT_TRUE(index.ok());

  CubeBuilder builder(schema, &world);
  std::vector<UpdateRecord> all_records;
  for (Date d = synth.period.first; d <= synth.period.last; d = d.next()) {
    auto records = gen.GenerateDayRecords(d);
    ASSERT_TRUE(index.value()->AppendDay(d, builder.BuildCube(records)).ok());
    all_records.insert(all_records.end(), records.begin(), records.end());
  }

  QueryExecutor executor(index.value().get(), nullptr, &world);
  Rng rng(99);
  const auto& countries = world.country_ids();
  for (int trial = 0; trial < 40; ++trial) {
    AnalysisQuery q;
    // Random window inside the covered period.
    int start = static_cast<int>(rng.Uniform(90));
    int len = 1 + static_cast<int>(rng.Uniform(90 - start));
    q.range = DateRange(synth.period.first.AddDays(start),
                        synth.period.first.AddDays(start + len - 1));
    // Random filters.
    if (rng.Bernoulli(0.4)) {
      q.element_types = {static_cast<ElementType>(rng.Uniform(3))};
    }
    if (rng.Bernoulli(0.4)) {
      q.countries = {countries[rng.Uniform(countries.size())]};
      if (rng.Bernoulli(0.3)) {
        q.countries.push_back(countries[rng.Uniform(countries.size())]);
      }
    }
    if (rng.Bernoulli(0.3)) {
      q.road_types = {static_cast<RoadTypeId>(rng.Uniform(schema.num_road_types))};
    }
    if (rng.Bernoulli(0.4)) {
      q.update_types = {static_cast<UpdateType>(rng.Uniform(4))};
    }
    // Random group-by subset.
    q.group_element_type = rng.Bernoulli(0.4);
    q.group_date = rng.Bernoulli(0.25);
    q.group_country = rng.Bernoulli(0.4);
    q.group_road_type = rng.Bernoulli(0.3);
    q.group_update_type = rng.Bernoulli(0.4);

    auto result = executor.Execute(q);
    ASSERT_TRUE(result.ok()) << q.ToString();

    std::map<GroupKey, uint64_t> expected =
        BruteForce(all_records, q, world);
    std::map<GroupKey, uint64_t> actual;
    for (const ResultRow& row : result.value().rows) {
      GroupKey gk{row.element_type,
                  row.has_date ? row.date.days_since_epoch()
                               : ResultRow::kNoGroup,
                  row.country, row.road_type, row.update_type};
      actual[gk] = row.count;
    }
    ASSERT_EQ(actual, expected) << "trial " << trial << ": " << q.ToString();
  }
}

}  // namespace
}  // namespace rased
