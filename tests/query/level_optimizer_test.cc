#include "query/level_optimizer.h"

#include <set>

#include <gtest/gtest.h>

#include "io/env.h"
#include "util/random.h"

namespace rased {
namespace {

CubeSchema TinySchema() { return CubeSchema{3, 8, 4, 4}; }

class LevelOptimizerTest : public ::testing::Test {
 protected:
  // Index covering 2021-10-01 .. 2022-02-28 (so the paper's Jan 1 2022 ..
  // Feb 15 2022 example fits inside with data before it).
  void SetUp() override {
    TemporalIndexOptions options;
    options.schema = TinySchema();
    options.num_levels = 4;
    options.dir = env::JoinPath(dir_.path(), "index");
    options.device = DeviceModel::None();
    auto index = TemporalIndex::Create(options);
    ASSERT_TRUE(index.ok());
    index_ = std::move(index).value();
    for (Date d = Date::FromYmd(2021, 10, 1); d <= Date::FromYmd(2022, 2, 28);
         d = d.next()) {
      DataCube cube(TinySchema());
      cube.Add(0, 0, 0, 0, 1);
      ASSERT_TRUE(index_->AppendDay(d, cube).ok());
    }
  }

  static int CountLevel(const QueryPlan& plan, Level level) {
    int n = 0;
    for (const CubeKey& key : plan.cubes) {
      if (key.level == level) ++n;
    }
    return n;
  }

  static bool PlanCoversExactly(const QueryPlan& plan, const DateRange& r) {
    std::set<int32_t> covered;
    for (const CubeKey& key : plan.cubes) {
      DateRange kr = key.range();
      for (Date d = kr.first; d <= kr.last; d = d.next()) {
        if (!covered.insert(d.days_since_epoch()).second) return false;
      }
    }
    return covered.size() == static_cast<size_t>(r.num_days()) &&
           (covered.empty() ||
            (*covered.begin() == r.first.days_since_epoch() &&
             *covered.rbegin() == r.last.days_since_epoch()));
  }

  TempDir dir_{"optimizer-test"};
  std::unique_ptr<TemporalIndex> index_;
};

TEST_F(LevelOptimizerTest, PaperWorkedExampleWithoutCache) {
  // Section VII-B's example: Jan 1, 2022 .. Feb 15, 2022 takes 46 daily
  // cubes flat, but a mixed-level plan needs only a handful. (The paper
  // counts 10 cubes with Sunday-aligned weeks; RASED's month-clipped weeks
  // do even better: monthly Jan + weekly Feb 1-7 + weekly Feb 8-14 +
  // daily Feb 15 = 4 cubes.)
  LevelOptimizer optimizer(index_.get(), nullptr);
  DateRange window(Date::FromYmd(2022, 1, 1), Date::FromYmd(2022, 2, 15));
  QueryPlan plan = optimizer.Plan(window);
  EXPECT_EQ(plan.cubes.size(), 4u);
  EXPECT_TRUE(PlanCoversExactly(plan, window));
  EXPECT_EQ(CountLevel(plan, Level::kMonthly), 1);
  EXPECT_EQ(CountLevel(plan, Level::kWeekly), 2);
  EXPECT_EQ(CountLevel(plan, Level::kDaily), 1);

  QueryPlan flat = optimizer.PlanFlat(window);
  EXPECT_EQ(flat.cubes.size(), 46u);
  EXPECT_TRUE(PlanCoversExactly(flat, window));
}

TEST_F(LevelOptimizerTest, CacheChangesTheOptimalPlan) {
  // Section VII-B continued: if the last ~60 daily cubes are cached and
  // nothing else is, the all-daily plan has zero disk reads and wins.
  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(60, TinySchema());
  cache_options.policy = CachePolicy::kAllDaily;
  CubeCache cache(cache_options);
  ASSERT_TRUE(cache.Warm(index_.get()).ok());

  LevelOptimizer optimizer(index_.get(), &cache);
  DateRange window(Date::FromYmd(2022, 1, 1), Date::FromYmd(2022, 2, 15));
  QueryPlan plan = optimizer.Plan(window);
  EXPECT_EQ(plan.cubes.size(), 46u);
  EXPECT_EQ(plan.expected_cached, 46u);
  EXPECT_EQ(plan.expected_disk(), 0u);
  EXPECT_EQ(CountLevel(plan, Level::kDaily), 46);
}

TEST_F(LevelOptimizerTest, FullMonthUsesMonthlyCube) {
  LevelOptimizer optimizer(index_.get(), nullptr);
  DateRange january(Date::FromYmd(2022, 1, 1), Date::FromYmd(2022, 1, 31));
  QueryPlan plan = optimizer.Plan(january);
  ASSERT_EQ(plan.cubes.size(), 1u);
  EXPECT_EQ(plan.cubes[0], CubeKey::Monthly(Date::FromYmd(2022, 1, 1)));
}

TEST_F(LevelOptimizerTest, FullWeekUsesWeeklyCube) {
  LevelOptimizer optimizer(index_.get(), nullptr);
  DateRange week(Date::FromYmd(2022, 1, 8), Date::FromYmd(2022, 1, 14));
  QueryPlan plan = optimizer.Plan(week);
  ASSERT_EQ(plan.cubes.size(), 1u);
  EXPECT_EQ(plan.cubes[0].level, Level::kWeekly);
}

TEST_F(LevelOptimizerTest, SingleDay) {
  LevelOptimizer optimizer(index_.get(), nullptr);
  DateRange day(Date::FromYmd(2022, 1, 5), Date::FromYmd(2022, 1, 5));
  QueryPlan plan = optimizer.Plan(day);
  ASSERT_EQ(plan.cubes.size(), 1u);
  EXPECT_EQ(plan.cubes[0], CubeKey::Daily(Date::FromYmd(2022, 1, 5)));
}

TEST_F(LevelOptimizerTest, EmptyRangeGivesEmptyPlan) {
  LevelOptimizer optimizer(index_.get(), nullptr);
  EXPECT_TRUE(optimizer.Plan(DateRange()).cubes.empty());
  EXPECT_TRUE(optimizer.PlanFlat(DateRange()).cubes.empty());
}

TEST_F(LevelOptimizerTest, DaysOutsideCoverageAreSkipped) {
  LevelOptimizer optimizer(index_.get(), nullptr);
  // Window starts before the index's first day.
  DateRange window(Date::FromYmd(2021, 9, 20), Date::FromYmd(2021, 10, 7));
  QueryPlan plan = optimizer.Plan(window);
  EXPECT_TRUE(!plan.cubes.empty());
  for (const CubeKey& key : plan.cubes) {
    EXPECT_GE(key.range().first, Date::FromYmd(2021, 10, 1));
  }
  // Days 10-01..10-07 must be covered (week 1 of October).
  int covered_days = 0;
  for (const CubeKey& key : plan.cubes) covered_days += key.range().num_days();
  EXPECT_EQ(covered_days, 7);
}

TEST_F(LevelOptimizerTest, PlanNeverWorseThanFlatProperty) {
  // Property: across many random windows, the optimized plan (a) covers
  // exactly the same days as the flat plan and (b) never uses more cubes.
  LevelOptimizer optimizer(index_.get(), nullptr);
  Rng rng(4242);
  Date base = Date::FromYmd(2021, 10, 1);
  for (int trial = 0; trial < 60; ++trial) {
    int start = static_cast<int>(rng.Uniform(140));
    int len = 1 + static_cast<int>(rng.Uniform(140 - start));
    DateRange window(base.AddDays(start), base.AddDays(start + len - 1));
    QueryPlan plan = optimizer.Plan(window);
    QueryPlan flat = optimizer.PlanFlat(window);
    EXPECT_TRUE(PlanCoversExactly(plan, window)) << window.ToString();
    EXPECT_LE(plan.cubes.size(), flat.cubes.size()) << window.ToString();
  }
}

TEST_F(LevelOptimizerTest, CachedCoarseCubeBeatsUncachedFine) {
  // Cache only the January monthly cube; a Jan 1-31 plan must use it even
  // though 31 cached dailies would also be "free" if they were cached.
  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(1, TinySchema());
  cache_options.policy = CachePolicy::kRasedRecency;
  cache_options.alpha = 0.0;
  cache_options.beta = 0.0;
  cache_options.gamma = 1.0;
  cache_options.theta = 0.0;
  CubeCache cache(cache_options);
  ASSERT_TRUE(cache.Warm(index_.get()).ok());
  // The most recent monthly cube is February (from Feb 28 rollup).
  DateRange feb(Date::FromYmd(2022, 2, 1), Date::FromYmd(2022, 2, 28));
  LevelOptimizer optimizer(index_.get(), &cache);
  QueryPlan plan = optimizer.Plan(feb);
  ASSERT_EQ(plan.cubes.size(), 1u);
  EXPECT_EQ(plan.expected_cached, 1u);
}

}  // namespace
}  // namespace rased
