#include "query/query_executor.h"

#include <map>

#include <gtest/gtest.h>

#include "index/cube_builder.h"
#include "io/env.h"

namespace rased {
namespace {

// Executor tests run at bench scale (64 zones, 192 KiB cubes) with
// hand-planted records so every expected count is known exactly.
class QueryExecutorTest : public ::testing::Test {
 protected:
  QueryExecutorTest() : schema_(CubeSchema::BenchScale()), world_(64) {}

  void SetUp() override {
    TemporalIndexOptions options;
    options.schema = schema_;
    options.num_levels = 4;
    options.dir = env::JoinPath(dir_.path(), "index");
    options.device = DeviceModel{100, 100, 0.0};
    auto index = TemporalIndex::Create(options);
    ASSERT_TRUE(index.ok());
    index_ = std::move(index).value();

    germany_ = world_.FindByName("Germany").value();
    china_ = world_.FindByName("China").value();
    europe_ = world_.FindByName("Europe").value();
    world_.SetRoadNetworkSize(germany_, 10000);
    world_.SetRoadNetworkSize(china_, 100);

    // Two months of data: each day Germany gets 4 new-way updates on road
    // type 5 and 2 geometry-node updates on road type 0; China gets 1
    // new-way update.
    CubeBuilder builder(schema_, &world_);
    for (Date d = Date::FromYmd(2021, 1, 1); d <= Date::FromYmd(2021, 2, 28);
         d = d.next()) {
      std::vector<UpdateRecord> records;
      for (int i = 0; i < 4; ++i) {
        records.push_back(Record(germany_, d, ElementType::kWay,
                                 UpdateType::kNew, 5));
      }
      for (int i = 0; i < 2; ++i) {
        records.push_back(Record(germany_, d, ElementType::kNode,
                                 UpdateType::kGeometry, 0));
      }
      records.push_back(
          Record(china_, d, ElementType::kWay, UpdateType::kNew, 5));
      ASSERT_TRUE(index_->AppendDay(d, builder.BuildCube(records)).ok());
    }
  }

  UpdateRecord Record(ZoneId country, Date date, ElementType et,
                      UpdateType ut, RoadTypeId rt) {
    UpdateRecord r;
    r.element_type = et;
    r.date = date;
    r.country = country;
    LatLon p = world_.zone(country).bounds.Center();
    r.lat = p.lat;
    r.lon = p.lon;
    r.road_type = rt;
    r.update_type = ut;
    return r;
  }

  CubeSchema schema_;
  WorldMap world_;
  TempDir dir_{"executor-test"};
  std::unique_ptr<TemporalIndex> index_;
  ZoneId germany_ = 0, china_ = 0, europe_ = 0;
};

TEST_F(QueryExecutorTest, TotalCountWithoutGrouping) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  // 7 records/day x 31 days; the default country partition avoids double
  // counting the continent cells.
  EXPECT_EQ(result.value().rows[0].count, 7u * 31);
}

TEST_F(QueryExecutorTest, GroupByCountry) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
  q.group_country = true;
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  std::map<int32_t, uint64_t> by_country;
  for (const ResultRow& row : result.value().rows) {
    by_country[row.country] = row.count;
  }
  EXPECT_EQ(by_country[germany_], 6u * 31);
  EXPECT_EQ(by_country[china_], 1u * 31);
  EXPECT_EQ(by_country.count(europe_), 0u);  // aggregates not in partition
}

TEST_F(QueryExecutorTest, ExplicitContinentFilterWorks) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
  q.countries = {europe_};
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  // Only Germany's updates are in Europe; China's fall in Asia.
  EXPECT_EQ(result.value().rows[0].count, 6u * 31);
}

TEST_F(QueryExecutorTest, FiltersCombine) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 10));
  q.countries = {germany_};
  q.element_types = {ElementType::kWay};
  q.update_types = {UpdateType::kNew};
  q.road_types = {5};
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0].count, 4u * 10);
}

TEST_F(QueryExecutorTest, GroupByElementAndUpdateType) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
  q.countries = {germany_};
  q.group_element_type = true;
  q.group_update_type = true;
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 2u);
  std::map<std::pair<int32_t, int32_t>, uint64_t> cells;
  for (const ResultRow& row : result.value().rows) {
    cells[{row.element_type, row.update_type}] = row.count;
  }
  EXPECT_EQ((cells[{static_cast<int32_t>(ElementType::kWay),
                    static_cast<int32_t>(UpdateType::kNew)}]),
            4u * 31);
  EXPECT_EQ((cells[{static_cast<int32_t>(ElementType::kNode),
                    static_cast<int32_t>(UpdateType::kGeometry)}]),
            2u * 31);
}

TEST_F(QueryExecutorTest, GroupByDateForcesDailyPlan) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
  q.countries = {germany_};
  q.group_date = true;
  QueryPlan plan = executor.PlanFor(q);
  EXPECT_EQ(plan.cubes.size(), 31u);
  for (const CubeKey& key : plan.cubes) {
    EXPECT_EQ(key.level, Level::kDaily);
  }
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 31u);
  for (const ResultRow& row : result.value().rows) {
    EXPECT_TRUE(row.has_date);
    EXPECT_EQ(row.count, 6u);
  }
}

TEST_F(QueryExecutorTest, OptimizedPlanUsesCoarseLevels) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
  QueryPlan plan = executor.PlanFor(q);
  ASSERT_EQ(plan.cubes.size(), 1u);
  EXPECT_EQ(plan.cubes[0].level, Level::kMonthly);

  QueryExecutor flat(index_.get(), nullptr, &world_, PlanMode::kFlat);
  EXPECT_EQ(flat.PlanFor(q).cubes.size(), 31u);
}

TEST_F(QueryExecutorTest, FlatAndOptimizedAgreeOnAnswers) {
  QueryExecutor optimized(index_.get(), nullptr, &world_);
  QueryExecutor flat(index_.get(), nullptr, &world_, PlanMode::kFlat);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 5), Date::FromYmd(2021, 2, 20));
  q.group_country = true;
  q.group_update_type = true;
  auto a = optimized.Execute(q);
  auto b = flat.Execute(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().rows.size(), b.value().rows.size());
  for (size_t i = 0; i < a.value().rows.size(); ++i) {
    EXPECT_EQ(a.value().rows[i].count, b.value().rows[i].count);
    EXPECT_EQ(a.value().rows[i].country, b.value().rows[i].country);
  }
  EXPECT_LT(a.value().stats.cubes_total, b.value().stats.cubes_total);
}

TEST_F(QueryExecutorTest, PercentageUsesRoadNetworkSize) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 1));
  q.countries = {germany_, china_};
  q.group_country = true;
  q.percentage = true;
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 2u);
  for (const ResultRow& row : result.value().rows) {
    if (row.country == germany_) {
      EXPECT_DOUBLE_EQ(row.percentage, 100.0 * 6 / 10000);
    } else {
      EXPECT_DOUBLE_EQ(row.percentage, 100.0 * 1 / 100);
    }
  }
}

TEST_F(QueryExecutorTest, PercentageRequiresCountryGrouping) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.percentage = true;
  EXPECT_TRUE(executor.Execute(q).status().IsInvalidArgument());
}

TEST_F(QueryExecutorTest, CacheHitsAvoidDiskReads) {
  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(64, schema_);
  cache_options.policy = CachePolicy::kAllDaily;
  CubeCache cache(cache_options);
  ASSERT_TRUE(cache.Warm(index_.get()).ok());
  index_->pager()->ResetStats();

  QueryExecutor executor(index_.get(), &cache, &world_);
  AnalysisQuery q;
  // The last 10 days are certainly within the 64 cached dailies.
  q.range = DateRange(Date::FromYmd(2021, 2, 19), Date::FromYmd(2021, 2, 28));
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.cubes_from_disk, 0u);
  EXPECT_GT(result.value().stats.cubes_from_cache, 0u);
  EXPECT_EQ(result.value().stats.io.page_reads, 0u);
  EXPECT_EQ(result.value().stats.io.simulated_device_micros, 0);
}

TEST_F(QueryExecutorTest, StatsChargeDeviceTimeOnMisses) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 31));
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.cubes_from_disk, 1u);  // monthly cube
  EXPECT_EQ(result.value().stats.io.page_reads, 1u);
  EXPECT_EQ(result.value().stats.io.simulated_device_micros, 100);
  EXPECT_GE(result.value().stats.total_micros(),
            result.value().stats.cpu_micros);
}

TEST_F(QueryExecutorTest, DuplicateFilterValuesCountOnce) {
  // Regression: IN-lists are sets. Before slices were normalized, naming
  // the same country (or road type / update type) twice double-counted
  // every matching cell.
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery base;
  base.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 10));
  base.countries = {germany_};

  AnalysisQuery duplicated = base;
  duplicated.countries = {germany_, germany_, germany_};
  duplicated.road_types = {5, 0, 5};
  duplicated.update_types = {UpdateType::kNew, UpdateType::kGeometry,
                             UpdateType::kNew};

  auto clean = executor.Execute(base);
  auto dup = executor.Execute(duplicated);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(dup.ok());
  ASSERT_EQ(clean.value().rows.size(), 1u);
  ASSERT_EQ(dup.value().rows.size(), 1u);
  // The duplicated filters select the same records, so counts must match:
  // 6 Germany updates/day (rt 5 + rt 0, kNew + kGeometry) x 10 days.
  EXPECT_EQ(clean.value().rows[0].count, 6u * 10);
  EXPECT_EQ(dup.value().rows[0].count, clean.value().rows[0].count);
}

TEST_F(QueryExecutorTest, BatchedMissesCoalesceAdjacentPages) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  // Grouping by date forces a daily plan: 10 daily cubes, all misses,
  // fetched in one batch whose adjacent pages coalesce.
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 10));
  q.group_date = true;
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  const IoStats& io = result.value().stats.io;
  // Transfer accounting is unchanged by batching...
  EXPECT_EQ(io.page_reads, 10u);
  // ...but the ten pages arrive in fewer device operations (the week-1
  // rollup pages interleave, so not one — but far fewer than ten).
  EXPECT_LT(io.read_ops, io.page_reads);
  EXPECT_LT(io.simulated_device_micros, 10 * 100);
}

TEST_F(QueryExecutorTest, RangeClampedToCoverage) {
  QueryExecutor executor(index_.get(), nullptr, &world_);
  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2019, 1, 1), Date::FromYmd(2030, 1, 1));
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0].count, 7u * 59);  // all 59 covered days
}

}  // namespace
}  // namespace rased
