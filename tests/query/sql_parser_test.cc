#include "query/sql_parser.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() : world_(305), road_types_(150), parser_(&world_, &road_types_) {}

  AnalysisQuery MustParse(const std::string& sql) {
    auto query = parser_.Parse(sql);
    EXPECT_TRUE(query.ok()) << sql << "\n  -> " << query.status().ToString();
    return query.value_or(AnalysisQuery{});
  }

  WorldMap world_;
  RoadTypeTable road_types_;
  SqlParser parser_;
};

TEST_F(SqlParserTest, PaperExample1CountryAnalysis) {
  // Verbatim from Section IV-A, Example 1 (quotes added around dates).
  AnalysisQuery q = MustParse(R"(
      SELECT U.Country, U.ElementType, COUNT(*)
      FROM UpdateList U
      WHERE U.Date BETWEEN 2021-01-01
        AND 2021-12-31
        AND U.UpdateType IN [New, Update]
      GROUP BY U.Country, U.ElementType)");
  EXPECT_EQ(q.range, DateRange(Date::FromYmd(2021, 1, 1),
                               Date::FromYmd(2021, 12, 31)));
  // "Update" expands to geometry+metadata.
  ASSERT_EQ(q.update_types.size(), 3u);
  EXPECT_EQ(q.update_types[0], UpdateType::kNew);
  EXPECT_TRUE(q.group_country);
  EXPECT_TRUE(q.group_element_type);
  EXPECT_FALSE(q.group_road_type);
  EXPECT_FALSE(q.percentage);
}

TEST_F(SqlParserTest, PaperExample2RoadTypeAnalysis) {
  AnalysisQuery q = MustParse(R"(
      SELECT U.RoadType, U.ElementType, COUNT(*)
      FROM UpdateList U
      WHERE U.Date AFTER 2018-01-01
        AND U.Country = USA
        AND U.UpdateType IN [New, Update]
      GROUP BY U.RoadType, U.ElementType)");
  EXPECT_EQ(q.range.first, Date::FromYmd(2018, 1, 1));
  ASSERT_EQ(q.countries.size(), 1u);
  EXPECT_EQ(q.countries[0], world_.FindByName("United States").value());
  EXPECT_TRUE(q.group_road_type);
  EXPECT_TRUE(q.group_element_type);
  EXPECT_FALSE(q.group_country);
}

TEST_F(SqlParserTest, PaperExample3ComparativeTimeSeries) {
  AnalysisQuery q = MustParse(R"(
      SELECT U.Country, U.Date, Percentage(*)
      FROM UpdateList U
      WHERE U.Date BETWEEN 2020-01-01
          AND 2021-12-31
          AND U.Country IN [Germany,
                            Singapore, Qatar]
      GROUP BY U.Country, U.Date)");
  EXPECT_TRUE(q.percentage);
  EXPECT_TRUE(q.group_country);
  EXPECT_TRUE(q.group_date);
  ASSERT_EQ(q.countries.size(), 3u);
  EXPECT_EQ(q.countries[1], world_.FindByName("Singapore").value());
}

TEST_F(SqlParserTest, ImplicitGroupByFromSelect) {
  AnalysisQuery q =
      MustParse("SELECT Country, COUNT(*) FROM UpdateList");
  EXPECT_TRUE(q.group_country);
}

TEST_F(SqlParserTest, QuotedValuesAndParenLists) {
  AnalysisQuery q = MustParse(
      "SELECT COUNT(*) FROM UpdateList WHERE Country IN "
      "('United States', \"New Zealand\") AND RoadType = 'residential'");
  ASSERT_EQ(q.countries.size(), 2u);
  ASSERT_EQ(q.road_types.size(), 1u);
  EXPECT_EQ(q.road_types[0], road_types_.Lookup("residential"));
}

TEST_F(SqlParserTest, KeywordsAreCaseInsensitive) {
  AnalysisQuery q = MustParse(
      "select country, count(*) from updatelist where date between "
      "2020-01-01 and 2020-06-30 group by country");
  EXPECT_TRUE(q.group_country);
  EXPECT_EQ(q.range.num_days(), 182);
}

TEST_F(SqlParserTest, DateEqualsAndBefore) {
  AnalysisQuery q = MustParse(
      "SELECT COUNT(*) FROM UpdateList WHERE Date = 2021-05-04");
  EXPECT_EQ(q.range, DateRange(Date::FromYmd(2021, 5, 4),
                               Date::FromYmd(2021, 5, 4)));

  AnalysisQuery before = MustParse(
      "SELECT COUNT(*) FROM UpdateList WHERE Date BEFORE 2010-01-01");
  EXPECT_EQ(before.range.last, Date::FromYmd(2010, 1, 1));
}

TEST_F(SqlParserTest, ElementTypeFilter) {
  AnalysisQuery q = MustParse(
      "SELECT COUNT(*) FROM UpdateList WHERE ElementType IN [way, relation]");
  ASSERT_EQ(q.element_types.size(), 2u);
  EXPECT_EQ(q.element_types[0], ElementType::kWay);
  EXPECT_EQ(q.element_types[1], ElementType::kRelation);
}

TEST_F(SqlParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(parser_.Parse("").ok());
  EXPECT_FALSE(parser_.Parse("SELECT").ok());
  EXPECT_FALSE(parser_.Parse("DELETE FROM UpdateList").ok());
  EXPECT_FALSE(parser_.Parse("SELECT COUNT(*) FROM SomeOtherTable").ok());
  EXPECT_FALSE(
      parser_.Parse("SELECT COUNT(*) FROM UpdateList WHERE Date ~ x").ok());
  EXPECT_FALSE(parser_.Parse(
                          "SELECT COUNT(*) FROM UpdateList WHERE Country IN "
                          "[Germany")  // unterminated list
                   .ok());
  EXPECT_FALSE(
      parser_.Parse("SELECT COUNT(*) FROM UpdateList trailing junk here")
          .ok());
}

TEST_F(SqlParserTest, RejectsUnknownNames) {
  EXPECT_FALSE(parser_.Parse("SELECT Color, COUNT(*) FROM UpdateList").ok());
  EXPECT_FALSE(
      parser_.Parse(
                 "SELECT COUNT(*) FROM UpdateList WHERE Country = Atlantis")
          .ok());
  EXPECT_FALSE(
      parser_.Parse(
                 "SELECT COUNT(*) FROM UpdateList WHERE RoadType = hyperlane")
          .ok());
  EXPECT_FALSE(
      parser_.Parse(
                 "SELECT COUNT(*) FROM UpdateList WHERE UpdateType = vibed")
          .ok());
}

TEST_F(SqlParserTest, RejectsSelectColumnNotGrouped) {
  EXPECT_FALSE(parser_.Parse(
                          "SELECT Country, RoadType, COUNT(*) FROM UpdateList "
                          "GROUP BY Country")
                   .ok());
}

TEST_F(SqlParserTest, RejectsPercentageWithoutCountry) {
  EXPECT_FALSE(
      parser_.Parse("SELECT Date, Percentage(*) FROM UpdateList GROUP BY Date")
          .ok());
}

TEST_F(SqlParserTest, ErrorsCarryOffsets) {
  auto bad = parser_.Parse("SELECT Country, COUNT(*) FROM Nowhere");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace rased
