#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cube_cache.h"
#include "geo/world_map.h"
#include "index/temporal_index.h"
#include "io/env.h"
#include "query/query_executor.h"
#include "util/random.h"

namespace rased {
namespace {

// Property tests for the query hot path: the dense aggregation kernels and
// the batched cube reads must be indistinguishable from the naive
// reference (per-cell ForEachCell folds + serial ReadCube) in every
// observable way — answers, row order, and transfer accounting — across
// randomized schemas, slices, group-bys, and covers. The suites are named
// "Hotpath*" so CI's TSan pass picks them up (the concurrency test below
// exercises the §7 contract under the race detector).

DataCube RandomCube(const CubeSchema& schema, Rng* rng, int adds = 200) {
  DataCube cube(schema);
  for (int i = 0; i < adds; ++i) {
    cube.Add(static_cast<uint32_t>(rng->Uniform(schema.num_element_types)),
             static_cast<uint32_t>(rng->Uniform(schema.num_countries)),
             static_cast<uint32_t>(rng->Uniform(schema.num_road_types)),
             static_cast<uint32_t>(rng->Uniform(schema.num_update_types)),
             rng->Uniform(25));
  }
  return cube;
}

// Random selection over a dimension: unconstrained half the time,
// otherwise 1..3 values that may include one out-of-range id (which the
// kernels must skip exactly like ForEachCell does).
std::vector<uint32_t> RandomSelection(uint32_t dim, Rng* rng) {
  std::vector<uint32_t> values;
  if (rng->Bernoulli(0.5)) return values;
  size_t n = 1 + rng->Uniform(3);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(static_cast<uint32_t>(rng->Uniform(dim + 1)));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

CubeSlice RandomSlice(const CubeSchema& schema, Rng* rng) {
  CubeSlice slice;
  slice.element_types = RandomSelection(schema.num_element_types, rng);
  slice.countries = RandomSelection(schema.num_countries, rng);
  slice.road_types = RandomSelection(schema.num_road_types, rng);
  slice.update_types = RandomSelection(schema.num_update_types, rng);
  return slice;
}

TEST(HotpathKernelTest, SumSliceIntoMatchesForEachCellAcrossSchemas) {
  Rng rng(31);
  const CubeSchema schemas[] = {
      CubeSchema{2, 3, 2, 2},   // everything tiny
      CubeSchema{3, 7, 5, 4},   // odd sizes
      CubeSchema{3, 16, 8, 4},  // bench-like shape
  };
  for (const CubeSchema& schema : schemas) {
    DataCube cube = RandomCube(schema, &rng);
    for (int trial = 0; trial < 100; ++trial) {
      CubeSlice slice = RandomSlice(schema, &rng);
      GroupBySpec spec{rng.Bernoulli(0.5), rng.Bernoulli(0.5),
                       rng.Bernoulli(0.5), rng.Bernoulli(0.5)};

      // Naive reference: per-cell visit, packed row-major fold.
      std::vector<uint64_t> expected(GroupAccumulatorSize(schema, spec), 0);
      cube.ForEachCell(slice, [&](uint32_t et, uint32_t co, uint32_t rt,
                                  uint32_t ut, uint64_t count) {
        size_t slot = 0;
        if (spec.element_type) slot = slot * schema.num_element_types + et;
        if (spec.country) slot = slot * schema.num_countries + co;
        if (spec.road_type) slot = slot * schema.num_road_types + rt;
        if (spec.update_type) slot = slot * schema.num_update_types + ut;
        expected[slot] += count;
      });

      std::vector<uint64_t> actual(expected.size(), 0);
      cube.SumSliceInto(slice, spec, actual.data());
      ASSERT_EQ(actual, expected)
          << schema.ToString() << " trial " << trial;

      // The zero-copy view must agree with the owning cube.
      std::vector<uint64_t> via_view(expected.size(), 0);
      cube.View().SumSliceInto(slice, spec, via_view.data());
      ASSERT_EQ(via_view, expected);
    }
  }
}

class HotpathIndexTest : public ::testing::Test {
 protected:
  static constexpr int kDays = 45;

  void SetUp() override {
    TemporalIndexOptions options;
    options.schema = schema_;
    options.num_levels = 4;
    options.dir = env::JoinPath(dir_.path(), "idx");
    options.device = DeviceModel{500, 0, 0.25};
    auto index = TemporalIndex::Create(options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(index).value();
    Rng rng(77);
    for (int i = 0; i < kDays; ++i) {
      ASSERT_TRUE(
          index_->AppendDay(first_.AddDays(i), RandomCube(schema_, &rng))
              .ok());
    }
  }

  CubeSchema schema_{3, 16, 8, 4};
  Date first_ = Date::FromYmd(2021, 1, 1);
  TempDir dir_{"hotpath-test"};
  std::unique_ptr<TemporalIndex> index_;
};

TEST_F(HotpathIndexTest, BatchedReadCubesMatchesSerialBitForBit) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    // A random cover: a contiguous daily stretch plus random weekly /
    // monthly cubes, shuffled — the shape LevelOptimizer plans produce.
    std::vector<CubeKey> keys;
    int start = static_cast<int>(rng.Uniform(kDays - 1));
    int len = 1 + static_cast<int>(rng.Uniform(
                      static_cast<uint64_t>(kDays - start)));
    for (int i = 0; i < len; ++i) {
      keys.push_back(CubeKey::Daily(first_.AddDays(start + i)));
    }
    for (const CubeKey& key :
         index_->ExistingKeys(Level::kWeekly, index_->coverage())) {
      if (rng.Bernoulli(0.5)) keys.push_back(key);
    }
    for (size_t i = keys.size(); i > 1; --i) {
      std::swap(keys[i - 1], keys[rng.Uniform(i)]);
    }

    IoStats batched_io;
    auto batch = index_->ReadCubes(keys, &batched_io);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();

    IoStats serial_io;
    for (size_t i = 0; i < keys.size(); ++i) {
      auto serial = index_->ReadCube(keys[i], &serial_io);
      ASSERT_TRUE(serial.ok());
      // Identical cube content after decoding the batch slot.
      auto decoded = batch.value().Decode(i);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      ASSERT_EQ(decoded.value(), serial.value())
          << "trial " << trial << " cube " << i;
    }

    // Transfer accounting identical; device ops and time never worse.
    EXPECT_EQ(batched_io.page_reads, serial_io.page_reads);
    EXPECT_EQ(batched_io.bytes_read, serial_io.bytes_read);
    EXPECT_LE(batched_io.read_ops, serial_io.read_ops);
    EXPECT_LE(batched_io.simulated_device_micros,
              serial_io.simulated_device_micros);
  }
}

// Naive reference executor: the pre-batching hot path — serial ReadCube
// per planned cube, per-cell ForEachCell fold into a tuple-keyed map.
using GroupKey = std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t>;

std::map<GroupKey, uint64_t> NaiveExecute(const TemporalIndex& index,
                                          const QueryExecutor& executor,
                                          const AnalysisQuery& q,
                                          const WorldMap& world,
                                          QueryStats* stats) {
  QueryPlan plan = executor.PlanFor(q);
  stats->cubes_total = plan.cubes.size();
  CubeSlice slice;
  for (ElementType t : q.element_types) {
    slice.element_types.push_back(static_cast<uint32_t>(t));
  }
  if (q.countries.empty()) {
    slice.countries.push_back(kZoneUnknown);
    for (ZoneId id : world.country_ids()) slice.countries.push_back(id);
  } else {
    for (ZoneId z : q.countries) slice.countries.push_back(z);
  }
  for (RoadTypeId r : q.road_types) slice.road_types.push_back(r);
  for (UpdateType u : q.update_types) {
    slice.update_types.push_back(static_cast<uint32_t>(u));
  }
  slice.Normalize();

  std::map<GroupKey, uint64_t> groups;
  for (const CubeKey& key : plan.cubes) {
    auto cube = index.ReadCube(key, &stats->io);
    EXPECT_TRUE(cube.ok());
    ++stats->cubes_from_disk;
    int32_t date_key = q.group_date ? key.range().first.days_since_epoch()
                                    : ResultRow::kNoGroup;
    cube.value().ForEachCell(
        slice, [&](uint32_t et, uint32_t co, uint32_t rt, uint32_t ut,
                   uint64_t count) {
          groups[GroupKey{
              q.group_element_type ? static_cast<int32_t>(et)
                                   : ResultRow::kNoGroup,
              date_key,
              q.group_country ? static_cast<int32_t>(co)
                              : ResultRow::kNoGroup,
              q.group_road_type ? static_cast<int32_t>(rt)
                                : ResultRow::kNoGroup,
              q.group_update_type ? static_cast<int32_t>(ut)
                                  : ResultRow::kNoGroup}] += count;
        });
  }
  return groups;
}

TEST_F(HotpathIndexTest, ExecutorMatchesNaiveReferenceOnRandomQueries) {
  WorldMap world(schema_.num_countries);
  QueryExecutor executor(index_.get(), nullptr, &world);
  Rng rng(47);
  for (int trial = 0; trial < 40; ++trial) {
    AnalysisQuery q;
    int start = static_cast<int>(rng.Uniform(kDays));
    int len = 1 + static_cast<int>(
                      rng.Uniform(static_cast<uint64_t>(kDays - start)));
    q.range = DateRange(first_.AddDays(start), first_.AddDays(start + len - 1));
    if (rng.Bernoulli(0.4)) {
      q.element_types = {static_cast<ElementType>(rng.Uniform(3))};
    }
    if (rng.Bernoulli(0.4)) {
      const auto& countries = world.country_ids();
      q.countries = {countries[rng.Uniform(countries.size())]};
      if (rng.Bernoulli(0.4)) {
        q.countries.push_back(countries[rng.Uniform(countries.size())]);
      }
      if (rng.Bernoulli(0.3)) q.countries.push_back(q.countries[0]);  // dup
    }
    if (rng.Bernoulli(0.3)) {
      q.road_types = {
          static_cast<RoadTypeId>(rng.Uniform(schema_.num_road_types))};
    }
    if (rng.Bernoulli(0.4)) {
      q.update_types = {static_cast<UpdateType>(rng.Uniform(4))};
    }
    q.group_element_type = rng.Bernoulli(0.4);
    q.group_date = rng.Bernoulli(0.25);
    q.group_country = rng.Bernoulli(0.4);
    q.group_road_type = rng.Bernoulli(0.3);
    q.group_update_type = rng.Bernoulli(0.4);

    auto result = executor.Execute(q);
    ASSERT_TRUE(result.ok()) << q.ToString();

    QueryStats naive_stats;
    std::map<GroupKey, uint64_t> expected =
        NaiveExecute(*index_, executor, q, world, &naive_stats);

    // Rows must match the reference in content AND order (the map's
    // sorted tuple order is the dashboard's contract).
    ASSERT_EQ(result.value().rows.size(), expected.size()) << q.ToString();
    size_t i = 0;
    for (const auto& [gk, count] : expected) {
      const ResultRow& row = result.value().rows[i++];
      EXPECT_EQ(row.element_type, std::get<0>(gk)) << q.ToString();
      EXPECT_EQ(row.has_date ? row.date.days_since_epoch()
                             : ResultRow::kNoGroup,
                std::get<1>(gk));
      EXPECT_EQ(row.country, std::get<2>(gk));
      EXPECT_EQ(row.road_type, std::get<3>(gk));
      EXPECT_EQ(row.update_type, std::get<4>(gk));
      EXPECT_EQ(row.count, count) << q.ToString();
    }

    // Accounting: same plan, same transfers; batching may only reduce the
    // op count and simulated device time.
    const QueryStats& stats = result.value().stats;
    EXPECT_EQ(stats.cubes_total, naive_stats.cubes_total);
    EXPECT_EQ(stats.cubes_from_disk, naive_stats.cubes_from_disk);
    EXPECT_EQ(stats.io.page_reads, naive_stats.io.page_reads);
    EXPECT_EQ(stats.io.bytes_read, naive_stats.io.bytes_read);
    EXPECT_LE(stats.io.read_ops, naive_stats.io.read_ops);
    EXPECT_LE(stats.io.simulated_device_micros,
              naive_stats.io.simulated_device_micros);
  }
}

TEST_F(HotpathIndexTest, ConcurrentQueriesReproduceSerialAccounting) {
  // The §7 contract: per-query IoStats must be bit-identical between a
  // serial run and an 8-way concurrent run of the same queries, batched
  // reads included. Run under TSan in CI.
  WorldMap world(schema_.num_countries);
  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(8, schema_);
  cache_options.policy = CachePolicy::kRasedRecency;
  CubeCache cache(cache_options);
  ASSERT_TRUE(cache.Warm(index_.get()).ok());
  QueryExecutor executor(index_.get(), &cache, &world);

  std::vector<AnalysisQuery> queries;
  for (int i = 0; i < 8; ++i) {
    AnalysisQuery q;
    q.range = DateRange(first_.AddDays(i), first_.AddDays(i + 30));
    q.group_country = (i % 2) == 0;
    q.group_date = (i % 3) == 0;
    q.group_update_type = (i % 4) == 0;
    queries.push_back(q);
  }

  std::vector<QueryResult> serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = executor.Execute(queries[i]);
    ASSERT_TRUE(result.ok());
    serial[i] = std::move(result).value();
  }

  std::vector<QueryResult> concurrent(queries.size());
  std::vector<std::thread> threads;
  threads.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    threads.emplace_back([&, i] {
      auto result = executor.Execute(queries[i]);
      ASSERT_TRUE(result.ok());
      concurrent[i] = std::move(result).value();
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(concurrent[i].rows.size(), serial[i].rows.size()) << i;
    for (size_t r = 0; r < serial[i].rows.size(); ++r) {
      EXPECT_EQ(concurrent[i].rows[r].count, serial[i].rows[r].count);
      EXPECT_EQ(concurrent[i].rows[r].country, serial[i].rows[r].country);
    }
    EXPECT_TRUE(concurrent[i].stats.io == serial[i].stats.io) << i;
    EXPECT_EQ(concurrent[i].stats.cubes_from_cache,
              serial[i].stats.cubes_from_cache);
    EXPECT_EQ(concurrent[i].stats.cubes_from_disk,
              serial[i].stats.cubes_from_disk);
  }
}

}  // namespace
}  // namespace rased
