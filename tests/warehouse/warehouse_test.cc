#include "warehouse/warehouse.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "io/env.h"
#include "util/random.h"

namespace rased {
namespace {

class WarehouseTest : public ::testing::Test {
 protected:
  WarehouseOptions Options() {
    WarehouseOptions options;
    options.dir = env::JoinPath(dir_.path(), "wh-" + std::to_string(counter_++));
    options.device = DeviceModel{50, 50, 0.0};
    options.page_size = 1024;  // small pages exercise page boundaries
    return options;
  }

  static UpdateRecord RecordAt(double lat, double lon, uint64_t changeset,
                               Date date = Date::FromYmd(2021, 1, 1)) {
    UpdateRecord r;
    r.element_type = ElementType::kNode;
    r.date = date;
    r.country = 3;
    r.lat = lat;
    r.lon = lon;
    r.road_type = 2;
    r.update_type = UpdateType::kNew;
    r.changeset_id = changeset;
    return r;
  }

  TempDir dir_{"warehouse-test"};
  int counter_ = 0;
};

TEST_F(WarehouseTest, AppendAndCount) {
  auto wh = Warehouse::Create(Options());
  ASSERT_TRUE(wh.ok()) << wh.status().ToString();
  std::vector<UpdateRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(RecordAt(i * 0.5, i * 0.25, 10 + i % 7));
  }
  ASSERT_TRUE(wh.value()->Append(records).ok());
  EXPECT_EQ(wh.value()->num_records(), 100u);
}

TEST_F(WarehouseTest, FindByChangeset) {
  auto wh = Warehouse::Create(Options());
  ASSERT_TRUE(wh.ok());
  ASSERT_TRUE(wh.value()
                  ->Append({RecordAt(1, 1, 500), RecordAt(2, 2, 501),
                            RecordAt(3, 3, 500)})
                  .ok());
  auto hits = wh.value()->FindByChangeset(500);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 2u);
  for (const UpdateRecord& r : hits.value()) {
    EXPECT_EQ(r.changeset_id, 500u);
  }
  EXPECT_TRUE(wh.value()->FindByChangeset(999).value_or({}).empty());
}

TEST_F(WarehouseTest, SampleInBox) {
  auto wh = Warehouse::Create(Options());
  ASSERT_TRUE(wh.ok());
  std::vector<UpdateRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(RecordAt(i, i, 1));  // diagonal
  }
  ASSERT_TRUE(wh.value()->Append(records).ok());
  auto hits = wh.value()->SampleInBox(BoundingBox{10, 10, 20, 20}, 100);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 11u);  // lat 10..20 inclusive
  for (const UpdateRecord& r : hits.value()) {
    EXPECT_GE(r.lat, 10);
    EXPECT_LE(r.lat, 20);
  }
}

TEST_F(WarehouseTest, SampleInBoxHonorsLimit) {
  auto wh = Warehouse::Create(Options());
  ASSERT_TRUE(wh.ok());
  std::vector<UpdateRecord> records;
  for (int i = 0; i < 500; ++i) records.push_back(RecordAt(5, 5, 1));
  ASSERT_TRUE(wh.value()->Append(records).ok());
  auto hits = wh.value()->SampleInBox(BoundingBox{0, 0, 10, 10}, 100);
  ASSERT_TRUE(hits.ok());
  // The paper's default sample size: N = 100.
  EXPECT_EQ(hits.value().size(), 100u);
}

TEST_F(WarehouseTest, SampleWithFilter) {
  auto wh = Warehouse::Create(Options());
  ASSERT_TRUE(wh.ok());
  std::vector<UpdateRecord> records;
  for (int i = 0; i < 60; ++i) {
    UpdateRecord r = RecordAt(i, i, 1, Date::FromYmd(2021, 1, 1 + i % 28));
    r.update_type = i % 2 == 0 ? UpdateType::kNew : UpdateType::kDelete;
    records.push_back(r);
  }
  ASSERT_TRUE(wh.value()->Append(records).ok());

  SampleFilter filter;
  filter.update_types = {UpdateType::kDelete};
  auto hits = wh.value()->Sample(filter, nullptr, 1000);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 30u);

  filter.range = DateRange(Date::FromYmd(2021, 1, 1),
                           Date::FromYmd(2021, 1, 7));
  auto bounded = wh.value()->Sample(filter, nullptr, 1000);
  ASSERT_TRUE(bounded.ok());
  for (const UpdateRecord& r : bounded.value()) {
    EXPECT_LE(r.date, Date::FromYmd(2021, 1, 7));
    EXPECT_EQ(r.update_type, UpdateType::kDelete);
  }
}

TEST_F(WarehouseTest, SampleWithSpatialFilterCombination) {
  auto wh = Warehouse::Create(Options());
  ASSERT_TRUE(wh.ok());
  std::vector<UpdateRecord> records;
  for (int i = 0; i < 40; ++i) {
    UpdateRecord r = RecordAt(i, i, 1);
    r.element_type = i % 2 == 0 ? ElementType::kNode : ElementType::kWay;
    records.push_back(r);
  }
  ASSERT_TRUE(wh.value()->Append(records).ok());
  SampleFilter filter;
  filter.element_types = {ElementType::kWay};
  BoundingBox box{0, 0, 19, 19};
  auto hits = wh.value()->Sample(filter, &box, 100);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 10u);  // odd i in 0..19
}

TEST_F(WarehouseTest, PersistsAcrossReopen) {
  WarehouseOptions options = Options();
  {
    auto wh = Warehouse::Create(options);
    ASSERT_TRUE(wh.ok());
    std::vector<UpdateRecord> records;
    for (int i = 0; i < 123; ++i) {
      records.push_back(RecordAt(i * 0.1, i * 0.2, 42));
    }
    ASSERT_TRUE(wh.value()->Append(records).ok());
  }
  auto wh = Warehouse::Open(options);
  ASSERT_TRUE(wh.ok()) << wh.status().ToString();
  EXPECT_EQ(wh.value()->num_records(), 123u);
  auto hits = wh.value()->FindByChangeset(42);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 123u);
  // Spatial index was rebuilt too.
  auto in_box = wh.value()->SampleInBox(BoundingBox{0, 0, 100, 100}, 0);
  ASSERT_TRUE(in_box.ok());
  EXPECT_EQ(in_box.value().size(), 123u);
}

TEST_F(WarehouseTest, UnflushedTailIsQueryable) {
  auto wh = Warehouse::Create(Options());
  ASSERT_TRUE(wh.ok());
  // Fewer records than one page holds.
  ASSERT_TRUE(wh.value()->Append({RecordAt(7, 7, 77)}).ok());
  auto hits = wh.value()->FindByChangeset(77);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits.value().size(), 1u);
  EXPECT_DOUBLE_EQ(hits.value()[0].lat, 7);
}

TEST_F(WarehouseTest, PageReadsAreBatchedByLocatorOrder) {
  auto wh = Warehouse::Create(Options());
  ASSERT_TRUE(wh.ok());
  std::vector<UpdateRecord> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(RecordAt(1, 1, 5));  // all in one tiny box
  }
  ASSERT_TRUE(wh.value()->Append(records).ok());
  ASSERT_TRUE(wh.value()->Sync().ok());
  wh.value()->pager()->ResetStats();
  auto hits = wh.value()->FindByChangeset(5);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 200u);
  // 1024-byte pages hold 30 records => 200 records span 7 pages; the
  // one-page cache must keep reads at page-count, not record-count.
  EXPECT_LE(wh.value()->pager()->stats().page_reads, 8u);
}

TEST_F(WarehouseTest, CreateRejectsExisting) {
  WarehouseOptions options = Options();
  ASSERT_TRUE(Warehouse::Create(options).ok());
  EXPECT_TRUE(Warehouse::Create(options).status().IsAlreadyExists());
}

}  // namespace
}  // namespace rased
