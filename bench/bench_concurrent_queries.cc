// Concurrent query read path — dashboard worker-pool scaling.
//
// The dashboard's HTTP pool runs analysis queries concurrently against
// one Rased instance: the executor is stateless, the index catalog is
// behind a reader-writer lock, and every query charges its own IoStats.
// This bench measures what that buys over the old design (one global
// mutex serializing every endpoint) on a cache-warm workload:
//
//   * the *determinism* claim — per-query QueryStats from an N-way
//     concurrent run are bit-identical to the serial run (checked, not
//     just reported), and
//   * the *scaling* claim — with the global lock gone, T workers retire
//     the same workload in ~1/T of the serialized device-model time.
//
// Times are the deterministic device-model makespan (the repo's standard
// methodology, see io/pager.h): a worker's cost is the sum of its
// queries' simulated device micros, the pool's makespan is the slowest
// worker, and the single-global-lock baseline is the sum over all
// queries — exactly what the old DashboardService::rased_mu_ enforced.
// Wall-clock is reported alongside for reference but is not the metric:
// it depends on host core count, while the makespan does not.
//
// Usage: bench_concurrent_queries [--quick] [key=value ...]
//   --quick: 2-year index, fewer queries, 1/4/8 threads (CI smoke gate).

#include <atomic>
#include <thread>

#include "bench_common.h"
#include "io/env.h"
#include "util/clock.h"

using namespace rased;
using namespace rased::bench;

namespace {

struct PerQueryStats {
  IoStats io;
  uint64_t cubes_total = 0;
  uint64_t cubes_from_cache = 0;
  uint64_t cubes_from_disk = 0;
};

bool SameAccounting(const PerQueryStats& a, const PerQueryStats& b) {
  return a.io == b.io && a.cubes_total == b.cubes_total &&
         a.cubes_from_cache == b.cubes_from_cache &&
         a.cubes_from_disk == b.cubes_from_disk;
}

PerQueryStats Capture(const QueryStats& s) {
  return PerQueryStats{s.io, s.cubes_total, s.cubes_from_cache,
                       s.cubes_from_disk};
}

}  // namespace

int main(int argc, char** argv) {
  // Config wants key=value pairs; the mode flag is ours, not its.
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchEnv env = BenchEnv::FromArgs(static_cast<int>(args.size()),
                                    args.data());
  if (quick) {
    // A 2-year index in its own subdirectory: builds in seconds on a
    // fresh tree instead of paying for the 16-year one, and never
    // collides with the full-size cached index.
    env.data_dir = env::JoinPath(env.data_dir, "quick");
    env.period = DateRange(Date::FromYmd(2020, 1, 1),
                           Date::FromYmd(2021, 12, 31));
    env.synth.period = env.period;
  }

  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);

  // Static recency cache: warmed once, never admits or evicts at query
  // time, so cache hits — and therefore per-query I/O — are a pure
  // function of the query. That is what makes the determinism check
  // below meaningful under concurrency.
  CacheOptions cache_options;
  const size_t cache_cubes =
      static_cast<size_t>(env.config.GetInt("cache_slots", 128));
  cache_options.byte_budget =
      CacheOptions::BytesForCubes(cache_cubes, env.schema);
  cache_options.policy = CachePolicy::kRasedRecency;
  CubeCache cache(cache_options);
  Status warm = cache.Warm(index.get());
  RASED_CHECK(warm.ok()) << warm.ToString();
  index->pager()->ResetStats();

  QueryExecutor executor(index.get(), &cache, world.get());

  const std::vector<int> thread_sweep =
      quick ? std::vector<int>{1, 4, 8} : std::vector<int>{1, 2, 4, 8, 16};
  const int total_queries =
      quick ? 64 : env.queries_per_point * 16;  // divisible by every T
  const int span_days = 60;

  // One fixed workload for every sweep point, generated up front.
  Rng rng(env.seed);
  std::vector<AnalysisQuery> queries;
  queries.reserve(static_cast<size_t>(total_queries));
  for (int i = 0; i < total_queries; ++i) {
    queries.push_back(RandomCellQuery(env, *world, rng, span_days));
  }

  // Serial reference pass: the accounting every concurrent run must
  // reproduce exactly, and the single-global-lock baseline cost.
  std::vector<PerQueryStats> reference(queries.size());
  int64_t serialized_micros = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = executor.Execute(queries[i]);
    RASED_CHECK(result.ok()) << result.status().ToString();
    reference[i] = Capture(result.value().stats);
    serialized_micros += result.value().stats.io.simulated_device_micros;
  }
  RASED_CHECK(serialized_micros > 0)
      << "workload is fully cache-resident; shrink cache_slots";

  PrintHeader(
      "Concurrent queries: dashboard worker-pool scaling",
      StrFormat("%d single-cell queries, %d-day windows, %zu-cube-budget "
                "warm cache, device model %lld us/page;",
                total_queries, span_days, cache_cubes,
                static_cast<long long>(env.device.read_latency_us)) +
          " makespan = slowest worker's summed device micros");
  PrintRow({"threads", "makespan", "speedup", "queries/s", "wall"});

  double speedup_at_8 = 0;
  for (int threads : thread_sweep) {
    // Round-robin partition: query i belongs to worker i % T, so the
    // assignment (and each worker's cost) is deterministic.
    std::vector<std::vector<PerQueryStats>> got(
        static_cast<size_t>(threads));
    for (auto& g : got) g.resize(queries.size());
    std::vector<int64_t> worker_micros(static_cast<size_t>(threads), 0);
    std::atomic<int> failures{0};

    StopWatch watch;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (size_t i = static_cast<size_t>(t); i < queries.size();
             i += static_cast<size_t>(threads)) {
          auto result = executor.Execute(queries[i]);
          if (!result.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          got[static_cast<size_t>(t)][i] = Capture(result.value().stats);
          worker_micros[static_cast<size_t>(t)] +=
              result.value().stats.io.simulated_device_micros;
        }
      });
    }
    for (std::thread& th : pool) th.join();
    double wall_ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
    RASED_CHECK(failures.load() == 0) << failures.load() << " queries failed";

    // Determinism: every query's accounting matches the serial run.
    for (size_t i = 0; i < queries.size(); ++i) {
      const PerQueryStats& concurrent =
          got[i % static_cast<size_t>(threads)][i];
      RASED_CHECK(SameAccounting(concurrent, reference[i]))
          << "query " << i << " accounting diverged at " << threads
          << " threads";
    }

    int64_t makespan = 0;
    for (int64_t m : worker_micros) makespan = std::max(makespan, m);
    if (makespan <= 0) makespan = 1;
    double speedup = static_cast<double>(serialized_micros) /
                     static_cast<double>(makespan);
    double qps = 1e6 * static_cast<double>(total_queries) /
                 static_cast<double>(makespan);
    if (threads == 8) speedup_at_8 = speedup;

    PrintRow({std::to_string(threads),
              FmtMillis(static_cast<double>(makespan) / 1000.0),
              StrFormat("%.2fx", speedup), StrFormat("%.0f", qps),
              FmtMillis(wall_ms)});
    PrintJsonLine(
        "concurrent_queries",
        {{"threads", static_cast<double>(threads)},
         {"queries", static_cast<double>(total_queries)},
         {"device_makespan_ms", static_cast<double>(makespan) / 1000.0},
         {"serialized_ms", static_cast<double>(serialized_micros) / 1000.0},
         {"speedup", speedup},
         {"queries_per_sec", qps},
         {"wall_ms", wall_ms}});
  }

  // The acceptance bar for this refactor: 8 workers beat the old global
  // lock by at least 4x on the same workload.
  RASED_CHECK(speedup_at_8 >= 4.0)
      << "8-thread speedup " << speedup_at_8 << " < 4x over global lock";

  std::printf(
      "\nExpected shape: makespan falls ~1/T (round-robin keeps workers\n"
      "balanced); the 1-thread row equals the old global-lock dashboard,\n"
      "where every /api/query serialized behind one mutex.\n");
  return 0;
}
