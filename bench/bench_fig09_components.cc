// Figure 9 — Effect of each component in RASED.
//
// Three system variants over query windows of 1..16 years:
//   RASED-F : flat one-level index, no level optimizer, no cache
//   RASED-O : full hierarchy + level optimizer, no cache
//   RASED   : hierarchy + optimizer + recency cache (the full system)
//
// The paper reports >2 orders of magnitude from F to O (the hierarchy +
// optimizer) and another order from O to RASED (the cache).

#include <algorithm>

#include "bench_common.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto flat_index = OpenOrBuildIndex(env, /*num_levels=*/1);
  auto full_index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);

  // RASED-F.
  QueryExecutor rased_f(flat_index.get(), nullptr, world.get(),
                        PlanMode::kFlat);
  // RASED-O.
  QueryExecutor rased_o(full_index.get(), nullptr, world.get(),
                        PlanMode::kOptimized);
  // Full RASED: a 512-dense-cube byte budget (the paper's 2 GB at
  // 4.4 MB/cube).
  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(
      static_cast<size_t>(env.config.GetInt("cache_slots", 512)), env.schema);
  CubeCache cache(cache_options);
  Status s = cache.Warm(full_index.get());
  RASED_CHECK(s.ok()) << s.ToString();
  full_index->pager()->ResetStats();
  QueryExecutor rased_full(full_index.get(), &cache, world.get(),
                           PlanMode::kOptimized);

  // Flat 16-year queries read thousands of cube pages each; cap their
  // count so the bench stays interactive.
  int flat_queries = std::min(env.queries_per_point,
                              static_cast<int>(env.config.GetInt(
                                  "flat_queries_per_point", 5)));

  const int kYears[] = {1, 2, 4, 8, 16};
  PrintHeader("Figure 9: effect of each RASED component",
              "mean response time (device model) per single-cell query; "
              "columns also report mean cube-page reads");
  PrintRow({"window", "RASED-F", "(reads)", "RASED-O", "(reads)", "RASED",
            "(reads)"});

  for (int years : kYears) {
    int span_days = years * 365;
    Rng rng_f(env.seed + 1000 + static_cast<uint64_t>(years));
    Rng rng_o(env.seed + 1000 + static_cast<uint64_t>(years));
    Rng rng_r(env.seed + 1000 + static_cast<uint64_t>(years));
    QueryLoadResult f = RunQueryLoad(&rased_f, env, *world, rng_f,
                                     flat_queries, span_days);
    QueryLoadResult o = RunQueryLoad(&rased_o, env, *world, rng_o,
                                     env.queries_per_point, span_days);
    QueryLoadResult r = RunQueryLoad(&rased_full, env, *world, rng_r,
                                     env.queries_per_point, span_days);
    PrintRow({StrFormat("%d year%s", years, years > 1 ? "s" : ""),
              FmtMillis(f.mean_millis), FmtCount(f.mean_page_reads),
              FmtMillis(o.mean_millis), FmtCount(o.mean_page_reads),
              FmtMillis(r.mean_millis), FmtCount(r.mean_page_reads)});
  }

  std::printf(
      "\nExpected shape (paper): RASED-F grows linearly with the window\n"
      "(one daily cube per day); RASED-O is >2 orders of magnitude better\n"
      "and nearly flat (coarse cubes); the cache buys another order, with\n"
      "RASED staying in single-digit milliseconds even at 16 years.\n");
  return 0;
}
