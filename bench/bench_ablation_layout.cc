// Ablation — cube layout (DESIGN.md §3.3).
//
// RASED stores cubes as dense uint64 arrays: rollups become vector adds
// and pages have a fixed size, as Section VI-A requires. The alternative
// a sparse implementation would pick — a hash map keyed by the packed
// coordinate — wins only when cubes are nearly empty. This ablation
// measures ingest, rollup-merge, and slice-sum throughput for both
// layouts at several fill factors.

#include <unordered_map>

#include "bench_common.h"
#include "util/clock.h"

using namespace rased;
using namespace rased::bench;

namespace {

/// The sparse strawman: coordinates packed into a u64 key.
class SparseCube {
 public:
  explicit SparseCube(const CubeSchema& schema) : schema_(schema) {}

  void Add(uint32_t et, uint32_t co, uint32_t rt, uint32_t ut, uint64_t n) {
    cells_[schema_.CellIndex(et, co, rt, ut)] += n;
  }

  void Merge(const SparseCube& other) {
    for (const auto& [idx, count] : other.cells_) cells_[idx] += count;
  }

  uint64_t Total() const {
    uint64_t sum = 0;
    for (const auto& [idx, count] : cells_) sum += count;
    return sum;
  }

  size_t size() const { return cells_.size(); }

 private:
  CubeSchema schema_;
  std::unordered_map<size_t, uint64_t> cells_;
};

struct Sample {
  uint32_t et, co, rt, ut;
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  CubeSchema schema = env.schema;
  const int kOps = 200000;

  PrintHeader("Ablation: dense vs sparse cube layout",
              StrFormat("schema %s; %d increments per trial",
                        schema.ToString().c_str(), kOps));
  PrintRow({"fill", "dense add", "sparse add", "dense merge", "sparse merge",
            "dense sum", "sparse sum"});

  for (double fill : {0.01, 0.1, 0.5}) {
    // Pre-draw coordinates hitting ~fill of the cells.
    Rng rng(env.seed + static_cast<uint64_t>(fill * 1000));
    size_t distinct = static_cast<size_t>(
        fill * static_cast<double>(schema.num_cells()));
    if (distinct == 0) distinct = 1;
    std::vector<Sample> pool;
    pool.reserve(distinct);
    for (size_t i = 0; i < distinct; ++i) {
      pool.push_back(Sample{static_cast<uint32_t>(rng.Uniform(schema.num_element_types)),
                            static_cast<uint32_t>(rng.Uniform(schema.num_countries)),
                            static_cast<uint32_t>(rng.Uniform(schema.num_road_types)),
                            static_cast<uint32_t>(rng.Uniform(schema.num_update_types))});
    }
    std::vector<Sample> ops;
    ops.reserve(kOps);
    for (int i = 0; i < kOps; ++i) {
      ops.push_back(pool[rng.Uniform(pool.size())]);
    }

    DataCube dense_a(schema), dense_b(schema);
    SparseCube sparse_a(schema), sparse_b(schema);

    StopWatch w1;
    for (const Sample& s : ops) dense_a.Add(s.et, s.co, s.rt, s.ut, 1);
    double dense_add = w1.ElapsedMillis();
    StopWatch w2;
    for (const Sample& s : ops) sparse_a.Add(s.et, s.co, s.rt, s.ut, 1);
    double sparse_add = w2.ElapsedMillis();

    for (const Sample& s : ops) {
      dense_b.Add(s.et, s.co, s.rt, s.ut, 1);
      sparse_b.Add(s.et, s.co, s.rt, s.ut, 1);
    }
    StopWatch w3;
    for (int i = 0; i < 10; ++i) {
      Status s = dense_a.Merge(dense_b);
      RASED_CHECK(s.ok());
    }
    double dense_merge = w3.ElapsedMillis() / 10;
    StopWatch w4;
    for (int i = 0; i < 10; ++i) sparse_a.Merge(sparse_b);
    double sparse_merge = w4.ElapsedMillis() / 10;

    StopWatch w5;
    uint64_t dsum = 0;
    for (int i = 0; i < 10; ++i) dsum += dense_a.Total();
    double dense_sum = w5.ElapsedMillis() / 10;
    StopWatch w6;
    uint64_t ssum = 0;
    for (int i = 0; i < 10; ++i) ssum += sparse_a.Total();
    double sparse_sum = w6.ElapsedMillis() / 10;
    RASED_CHECK(dsum > 0 && ssum > 0);

    PrintRow({StrFormat("%.0f%%", fill * 100), FmtMillis(dense_add),
              FmtMillis(sparse_add), FmtMillis(dense_merge),
              FmtMillis(sparse_merge), FmtMillis(dense_sum),
              FmtMillis(sparse_sum)});
  }

  std::printf(
      "\nExpected: dense increments are a single indexed add and merges are\n"
      "linear vector adds; the sparse map only competes on nearly-empty\n"
      "cubes and loses the fixed-page-size property the index relies on.\n");
  return 0;
}
