// Mixed ingest/query workload — MVCC non-blocking publication.
//
// The catalog is published as immutable epoch-versioned snapshots: every
// query pins the version it started on, ingest stages new cube pages off
// to the side and swaps in a new version atomically, and retired versions
// are reclaimed once their last reader drains. This bench measures the
// headline claim of that design on the device model:
//
//   * the *reader latency* claim — a query workload running while ingest
//     actively publishes new days has the same device-model makespan as
//     the same workload with no ingest at all (gate: < 10% degradation;
//     the expected number is exactly 0% because per-query accounting is
//     bit-identical, which is also checked row for row), and
//   * the *ingest throughput* claim — MVCC staging costs ingest no more
//     than the old exclusive-lock write path (gate: < 25% extra device
//     time against an ingest-only baseline over a structure-matched
//     window of days), and
//   * the *publication* claim — readers observe at least two distinct
//     epochs across the mixed phase, i.e. publications really do land
//     while the query load runs.
//
// Times are the deterministic device-model makespan (the repo's standard
// methodology, see io/pager.h): a reader worker's cost is the sum of its
// queries' simulated device micros and the pool's makespan is the slowest
// worker; ingest cost is the pager's global device-micros delta minus the
// readers' share. Wall-clock is reported for reference only.
//
// The bench mutates its index (it appends days), so it always builds a
// fresh one instead of using the shared cached bench indexes.
//
// Usage: bench_ingest_vs_query [--quick] [key=value ...]
//   --quick: 1-year base index, fewer queries (CI smoke gate).

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "bench_common.h"
#include "io/env.h"
#include "synth/cube_synthesizer.h"
#include "util/clock.h"

using namespace rased;
using namespace rased::bench;

namespace {

struct QueryRecord {
  IoStats io;
  uint64_t cubes_total = 0;
  uint64_t cubes_from_cache = 0;
  std::vector<ResultRow> rows;
};

bool RowsMatch(const std::vector<ResultRow>& a,
               const std::vector<ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].element_type != b[i].element_type ||
        a[i].has_date != b[i].has_date ||
        (a[i].has_date && !(a[i].date == b[i].date)) ||
        a[i].country != b[i].country || a[i].road_type != b[i].road_type ||
        a[i].update_type != b[i].update_type || a[i].count != b[i].count) {
      return false;
    }
  }
  return true;
}

/// Runs the fixed workload with `threads` reader workers (round-robin
/// partition, so each worker's device cost is deterministic) and returns
/// the device-model makespan. Fills `got` (indexed by query) and folds
/// each observed QueryStats::epoch into min/max.
int64_t RunReaders(const QueryExecutor& executor,
                   const std::vector<AnalysisQuery>& queries, int threads,
                   std::vector<QueryRecord>* got,
                   std::atomic<uint64_t>* min_epoch,
                   std::atomic<uint64_t>* max_epoch) {
  std::vector<int64_t> worker_micros(static_cast<size_t>(threads), 0);
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < queries.size();
           i += static_cast<size_t>(threads)) {
        auto result = executor.Execute(queries[i]);
        if (!result.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const QueryStats& s = result.value().stats;
        (*got)[i] = QueryRecord{s.io, s.cubes_total, s.cubes_from_cache,
                                std::move(result.value().rows)};
        worker_micros[static_cast<size_t>(t)] += s.io.simulated_device_micros;
        uint64_t seen = s.epoch;
        uint64_t lo = min_epoch->load(std::memory_order_relaxed);
        while (seen < lo &&
               !min_epoch->compare_exchange_weak(lo, seen)) {
        }
        uint64_t hi = max_epoch->load(std::memory_order_relaxed);
        while (seen > hi &&
               !max_epoch->compare_exchange_weak(hi, seen)) {
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  RASED_CHECK(failures.load() == 0) << failures.load() << " queries failed";
  int64_t makespan = 0;
  for (int64_t m : worker_micros) makespan = std::max(makespan, m);
  return makespan;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchEnv env = BenchEnv::FromArgs(static_cast<int>(args.size()),
                                    args.data());
  if (quick) {
    env.period = DateRange(Date::FromYmd(2021, 1, 1),
                           Date::FromYmd(2021, 12, 31));
    env.synth.period = env.period;
  }
  // This bench appends days, so it never reuses a cached index: fresh
  // build in its own subdirectory every run.
  env.data_dir = env::JoinPath(env.data_dir,
                               quick ? "mvcc_quick" : "mvcc");
  // NOLINT-RASED(status-discard): a first run has nothing to remove
  (void)env::RemoveAll(env.data_dir);

  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);

  // Static recency cache: warmed once against the base version, never
  // admits or evicts at query time. Appended days never replace a
  // historical page (published pages are immutable and appends only add
  // keys), so cache hits — and per-query I/O — are a pure function of the
  // query across every epoch this bench publishes.
  CacheOptions cache_options;
  const size_t cache_cubes =
      static_cast<size_t>(env.config.GetInt("cache_slots", 128));
  // Budget for ~cache_cubes cubes of this index's *actual* average encoded
  // size, not the dense worst case — keeps the workload partially resident
  // (the makespan baseline below requires real device I/O) no matter how
  // well the adaptive encodings compress.
  const IndexStorageStats storage = index->StorageStats();
  const uint64_t avg_encoded =
      storage.total_cubes > 0
          ? std::max<uint64_t>(1, storage.encoded_bytes / storage.total_cubes)
          : env.schema.cube_bytes();
  cache_options.byte_budget = cache_cubes * avg_encoded;
  cache_options.policy = CachePolicy::kRasedRecency;
  CubeCache cache(cache_options);
  Status warm = cache.Warm(index.get());
  RASED_CHECK(warm.ok()) << warm.ToString();

  QueryExecutor executor(index.get(), &cache, world.get());

  const int threads = env.config.GetInt("threads", 4);
  const int total_queries = quick ? 64 : env.queries_per_point * 16;
  const int span_days = 60;
  // Two structure-matched 35-day ingest windows right after the base
  // period: each holds exactly 5 week boundaries and 1 month boundary, so
  // their maintenance I/O (rollup reads + writes) is comparable within a
  // few percent.
  const int ingest_days = 35;

  Rng rng(env.seed);
  std::vector<AnalysisQuery> queries;
  queries.reserve(static_cast<size_t>(total_queries));
  for (int i = 0; i < total_queries; ++i) {
    queries.push_back(RandomCellQuery(env, *world, rng, span_days));
  }

  CubeSynthesizer synth(env.synth, world.get(), env.schema);
  std::atomic<uint64_t> min_epoch{~0ull};
  std::atomic<uint64_t> max_epoch{0};

  // ---- phase 1: readers-only baseline (device-model makespan and the
  // reference accounting/rows every later query must reproduce).
  index->pager()->ResetStats();
  std::vector<QueryRecord> reference(queries.size());
  int64_t makespan_baseline = RunReaders(executor, queries, threads,
                                         &reference, &min_epoch, &max_epoch);
  RASED_CHECK(makespan_baseline > 0)
      << "workload is fully cache-resident; shrink cache_slots";

  // ---- phase 2: exclusive-ingest baseline (no readers). The pager's
  // global delta is pure ingest cost: the old exclusive-lock design paid
  // exactly this, with every reader parked behind the writer meanwhile.
  index->pager()->ResetStats();
  Date day = env.period.last.next();
  StopWatch exclusive_watch;
  for (int i = 0; i < ingest_days; ++i, day = day.next()) {
    Status s = index->AppendDay(day, synth.DayCube(day));
    RASED_CHECK(s.ok()) << s.ToString();
  }
  double exclusive_wall_ms = exclusive_watch.ElapsedMillis();
  const int64_t ingest_exclusive_micros =
      index->pager()->stats().simulated_device_micros;
  RASED_CHECK(ingest_exclusive_micros > 0);

  // ---- phase 3: mixed. The ingest thread publishes the next 35 days
  // while the reader pool re-runs the identical workload. Epoch-bracket
  // queries (one before the first publication, one after the last) prove
  // at least two distinct epochs are observable in this phase even if the
  // scheduler serializes the threads.
  index->pager()->ResetStats();
  min_epoch.store(~0ull);
  max_epoch.store(0);
  {
    auto bracket = executor.Execute(queries[0]);
    RASED_CHECK(bracket.ok());
    min_epoch.store(bracket.value().stats.epoch);
    max_epoch.store(bracket.value().stats.epoch);
  }

  std::atomic<int> ingest_failures{0};
  StopWatch mixed_watch;
  std::thread ingestor([&] {
    Date d = day;
    for (int i = 0; i < ingest_days; ++i, d = d.next()) {
      Status s = index->AppendDay(d, synth.DayCube(d));
      if (!s.ok()) ingest_failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<QueryRecord> mixed(queries.size());
  int64_t makespan_mixed = RunReaders(executor, queries, threads, &mixed,
                                      &min_epoch, &max_epoch);
  ingestor.join();
  double mixed_wall_ms = mixed_watch.ElapsedMillis();
  RASED_CHECK(ingest_failures.load() == 0);
  {
    auto bracket = executor.Execute(queries[0]);
    RASED_CHECK(bracket.ok());
    uint64_t seen = bracket.value().stats.epoch;
    if (seen > max_epoch.load()) max_epoch.store(seen);
  }

  // Readers' device micros are charged to their own IoStats as well as the
  // pager's global counters, so the global delta minus the readers' share
  // is the ingest thread's cost.
  int64_t mixed_total_micros =
      index->pager()->stats().simulated_device_micros;
  int64_t readers_micros = 0;
  for (const QueryRecord& r : mixed) {
    readers_micros += r.io.simulated_device_micros;
  }
  // The two bracket queries also charged the global counters.
  readers_micros += 2 * reference[0].io.simulated_device_micros;
  const int64_t ingest_mixed_micros = mixed_total_micros - readers_micros;

  // ---- verification gates (all deterministic under the device model) --
  for (size_t i = 0; i < queries.size(); ++i) {
    RASED_CHECK(mixed[i].io == reference[i].io &&
                mixed[i].cubes_total == reference[i].cubes_total &&
                mixed[i].cubes_from_cache == reference[i].cubes_from_cache)
        << "query " << i << " accounting diverged during ingest";
    RASED_CHECK(RowsMatch(mixed[i].rows, reference[i].rows))
        << "query " << i << " rows diverged during ingest";
  }
  double reader_degradation = static_cast<double>(makespan_mixed) /
                              static_cast<double>(makespan_baseline);
  double ingest_overhead = static_cast<double>(ingest_mixed_micros) /
                           static_cast<double>(ingest_exclusive_micros);
  uint64_t epochs_lo = min_epoch.load();
  uint64_t epochs_hi = max_epoch.load();

  PrintHeader(
      "Ingest vs query: MVCC non-blocking publication",
      StrFormat("%d single-cell queries x %d readers vs %d appended days, "
                "%zu-cube-budget warm cache, device model %lld us/page;",
                total_queries, threads, ingest_days, cache_cubes,
                static_cast<long long>(env.device.read_latency_us)) +
          " makespan = slowest reader's summed device micros");
  PrintRow({"phase", "reader makespan", "ingest device", "wall"});
  PrintRow({"readers only",
            FmtMillis(static_cast<double>(makespan_baseline) / 1000.0), "-",
            "-"});
  PrintRow({"ingest only", "-",
            FmtMillis(static_cast<double>(ingest_exclusive_micros) / 1000.0),
            FmtMillis(exclusive_wall_ms)});
  PrintRow({"mixed",
            FmtMillis(static_cast<double>(makespan_mixed) / 1000.0),
            FmtMillis(static_cast<double>(ingest_mixed_micros) / 1000.0),
            FmtMillis(mixed_wall_ms)});
  std::printf("\nreader degradation %.3fx (gate < 1.10), ingest overhead "
              "%.3fx (gate < 1.25), epochs observed %llu..%llu\n",
              reader_degradation, ingest_overhead,
              static_cast<unsigned long long>(epochs_lo),
              static_cast<unsigned long long>(epochs_hi));
  PrintJsonLine(
      "mvcc_ingest",
      {{"threads", static_cast<double>(threads)},
       {"queries", static_cast<double>(total_queries)},
       {"ingest_days", static_cast<double>(ingest_days)},
       {"reader_makespan_ms",
        static_cast<double>(makespan_baseline) / 1000.0},
       {"reader_makespan_mixed_ms",
        static_cast<double>(makespan_mixed) / 1000.0},
       {"reader_degradation", reader_degradation},
       {"ingest_exclusive_ms",
        static_cast<double>(ingest_exclusive_micros) / 1000.0},
       {"ingest_mixed_ms",
        static_cast<double>(ingest_mixed_micros) / 1000.0},
       {"ingest_overhead", ingest_overhead},
       {"epochs_observed",
        static_cast<double>(epochs_hi - epochs_lo + 1)}});

  // The acceptance bars for the MVCC refactor.
  RASED_CHECK(reader_degradation < 1.10)
      << "reader makespan degraded " << reader_degradation
      << "x while ingest was active";
  RASED_CHECK(ingest_overhead < 1.25)
      << "MVCC staging cost ingest " << ingest_overhead
      << "x the exclusive-lock baseline";
  RASED_CHECK(epochs_hi > epochs_lo)
      << "readers never observed a publication";

  std::printf(
      "\nExpected shape: reader degradation is exactly 1.000x — queries pin\n"
      "immutable snapshots, so concurrent publications cannot add a single\n"
      "device microsecond or change a row; ingest pays the same staging\n"
      "I/O it paid under the exclusive lock (within rollup-window noise).\n");
  return 0;
}
