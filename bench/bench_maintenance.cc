// Section VI-A maintenance cost: the daily tick is dominated by scanning
// the day's UpdateList ("10~20 MB", "up to 30 minutes" at planet scale);
// the index I/O itself is a handful of pages. This bench measures the
// pipeline's pieces — record generation excluded — across UpdateList
// sizes, plus the monthly-rebuild cost.

#include "bench_common.h"
#include "index/cube_builder.h"
#include "io/env.h"
#include "synth/update_generator.h"
#include "util/clock.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto world = MakeWorld(env);
  RoadTypeTable roads(env.schema.num_road_types);

  PrintHeader("Maintenance: daily tick cost vs UpdateList size",
              "cube build = scan UpdateList into the day's cube; append = "
              "index write + any rollups");
  PrintRow({"records/day", "list MB", "cube build", "append", "total"});

  TempDir scratch("maint");
  int run = 0;
  for (double rate : {1000.0, 5000.0, 20000.0, 50000.0}) {
    SynthOptions synth = env.synth;
    synth.base_updates_per_day = rate;
    synth.growth_per_year = 0.0;
    UpdateGenerator gen(synth, world.get(), &roads);

    TemporalIndexOptions options;
    options.schema = env.schema;
    options.num_levels = 4;
    options.dir = env::JoinPath(scratch.path(), StrFormat("idx-%d", run++));
    options.device = DeviceModel::None();
    auto index = TemporalIndex::Create(options);
    RASED_CHECK(index.ok()) << index.status().ToString();
    CubeBuilder builder(env.schema, world.get());

    double build_ms = 0, append_ms = 0;
    uint64_t records = 0;
    Date start = Date::FromYmd(2020, 1, 1);
    for (int i = 0; i < 7; ++i) {  // one week, includes a weekly rollup
      Date d = start.AddDays(i);
      auto day_records = gen.GenerateDayRecords(d);
      records += day_records.size();
      StopWatch build_watch;
      DataCube cube = builder.BuildCube(day_records);
      build_ms += build_watch.ElapsedMillis();
      StopWatch append_watch;
      Status s = index.value()->AppendDay(d, cube);
      RASED_CHECK(s.ok()) << s.ToString();
      append_ms += append_watch.ElapsedMillis();
    }
    double per_day = static_cast<double>(records) / 7.0;
    double list_mb = per_day * UpdateRecord::kEncodedBytes / 1048576.0;
    PrintRow({StrFormat("%.0f", per_day), StrFormat("%.2f", list_mb),
              FmtMillis(build_ms / 7), FmtMillis(append_ms / 7),
              FmtMillis((build_ms + append_ms) / 7)});
  }

  // Monthly rebuild cost.
  PrintHeader("Maintenance: monthly rebuild",
              "full-history recrawl replaced by its cube rebuild cost");
  SynthOptions synth = env.synth;
  synth.base_updates_per_day = 5000.0;
  synth.growth_per_year = 0.0;
  UpdateGenerator gen(synth, world.get(), &roads);
  TemporalIndexOptions options;
  options.schema = env.schema;
  options.num_levels = 4;
  options.dir = env::JoinPath(scratch.path(), "idx-monthly");
  options.device = DeviceModel::None();
  auto index = TemporalIndex::Create(options);
  RASED_CHECK(index.ok()) << index.status().ToString();
  CubeBuilder builder(env.schema, world.get());

  Date month = Date::FromYmd(2020, 1, 1);
  std::vector<DataCube> cubes;
  for (Date d = month; d <= month.month_end(); d = d.next()) {
    DataCube cube = builder.BuildCube(gen.GenerateDayRecords(d));
    Status s = index.value()->AppendDay(d, cube);
    RASED_CHECK(s.ok()) << s.ToString();
    cubes.push_back(std::move(cube));
  }
  index.value()->pager()->ResetStats();
  StopWatch watch;
  Status s = index.value()->RebuildMonth(month, cubes);
  RASED_CHECK(s.ok()) << s.ToString();
  std::printf("rebuild of one month: %s, %llu page writes\n",
              FmtMillis(watch.ElapsedMillis()).c_str(),
              static_cast<unsigned long long>(
                  index.value()->pager()->stats().page_writes));
  return 0;
}
