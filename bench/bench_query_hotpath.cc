// Query hot path: batched cube I/O + dense aggregation kernels.
//
// Compares the current executor (one batched ReadCubes per query,
// coalesced device reads, SumSliceInto dense group-by kernels, zero-copy
// cube views) against the pre-batching hot path reimplemented here as the
// naive reference: one serial ReadCube per planned cube and a per-cell
// ForEachCell fold into a tuple-keyed std::map.
//
// The workload is a dashboard refresh, not single-cell probes: the four
// panel shapes of the paper's Figures 2-5 (a 90-day time series, a
// country choropleth, a road-type x update-type histogram, and a 7-day
// daily detail) with windows ending at random recent dates over the
// Fig. 9 16-year index. Time-series panels force daily plans whose cube
// pages are physically adjacent — exactly what read coalescing targets —
// while the grouped panels stress the aggregation kernels.
//
// Two regimes per mode:
//   cold: empty cache, every cube from disk. Metric = device-model
//         micros (deterministic; see io/pager.h): batching pays one seek
//         per coalesced run instead of one per page.
//   warm: every workload cube pre-resident. Metric = CPU wall micros of
//         planning + aggregation: kernels vs per-cell visits.
//
// Both paths must produce identical rows and identical transfer counts
// (page_reads/bytes_read); the batched path may only shrink read_ops and
// simulated device time. --quick runs a 2-year index and asserts the
// deterministic facts (rows, transfers, coalescing, cold device-time
// ratio >= 2x) as a CI gate; warm CPU ratios are reported but not gated
// (wall clock is host-dependent).
//
// Usage: bench_query_hotpath [--quick] [key=value ...]

#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "index/temporal_key.h"
#include "io/env.h"
#include "util/clock.h"

using namespace rased;
using namespace rased::bench;

namespace {

using GroupKey = std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t>;

// Slice construction mirroring the executor (default country partition +
// set-semantics normalization), so both paths aggregate the same cells.
CubeSlice SliceFor(const AnalysisQuery& q, const WorldMap& world) {
  CubeSlice slice;
  for (ElementType t : q.element_types) {
    slice.element_types.push_back(static_cast<uint32_t>(t));
  }
  if (q.countries.empty()) {
    slice.countries.push_back(kZoneUnknown);
    for (ZoneId id : world.country_ids()) slice.countries.push_back(id);
  } else {
    for (ZoneId z : q.countries) slice.countries.push_back(z);
  }
  for (RoadTypeId r : q.road_types) slice.road_types.push_back(r);
  for (UpdateType u : q.update_types) {
    slice.update_types.push_back(static_cast<uint32_t>(u));
  }
  slice.Normalize();
  return slice;
}

// The pre-batching aggregation: per-cell visitor into a sorted map.
void NaiveAggregate(const DataCube& cube, const CubeSlice& slice,
                    const AnalysisQuery& q, int32_t date_key,
                    std::map<GroupKey, uint64_t>* groups) {
  cube.ForEachCell(slice, [&](uint32_t et, uint32_t co, uint32_t rt,
                              uint32_t ut, uint64_t count) {
    (*groups)[GroupKey{
        q.group_element_type ? static_cast<int32_t>(et) : ResultRow::kNoGroup,
        date_key,
        q.group_country ? static_cast<int32_t>(co) : ResultRow::kNoGroup,
        q.group_road_type ? static_cast<int32_t>(rt) : ResultRow::kNoGroup,
        q.group_update_type ? static_cast<int32_t>(ut)
                            : ResultRow::kNoGroup}] += count;
  });
}

struct NaiveResult {
  std::map<GroupKey, uint64_t> groups;
  IoStats io;
};

// The pre-batching executor: serial ReadCube per planned cube. `resident`
// (when non-null) plays the role of a fully warmed cache.
NaiveResult NaiveExecute(
    const TemporalIndex& index, const QueryExecutor& executor,
    const AnalysisQuery& q, const CubeSlice& slice,
    const std::unordered_map<CubeKey, DataCube, CubeKeyHash>* resident) {
  NaiveResult out;
  QueryPlan plan = executor.PlanFor(q);
  for (const CubeKey& key : plan.cubes) {
    int32_t date_key = q.group_date ? key.range().first.days_since_epoch()
                                    : ResultRow::kNoGroup;
    if (resident != nullptr) {
      auto it = resident->find(key);
      RASED_CHECK(it != resident->end());
      NaiveAggregate(it->second, slice, q, date_key, &out.groups);
      continue;
    }
    auto cube = index.ReadCube(key, &out.io);
    RASED_CHECK(cube.ok()) << cube.status().ToString();
    NaiveAggregate(cube.value(), slice, q, date_key, &out.groups);
  }
  return out;
}

bool RowsMatch(const std::vector<ResultRow>& rows,
               const std::map<GroupKey, uint64_t>& groups) {
  if (rows.size() != groups.size()) return false;
  size_t i = 0;
  for (const auto& [gk, count] : groups) {
    const ResultRow& row = rows[i++];
    int32_t date_key =
        row.has_date ? row.date.days_since_epoch() : ResultRow::kNoGroup;
    if (GroupKey{row.element_type, date_key, row.country, row.road_type,
                 row.update_type} != gk ||
        row.count != count) {
      return false;
    }
  }
  return true;
}

// One dashboard refresh: the four Figure 2-5 panel shapes anchored at a
// random recent date.
std::vector<AnalysisQuery> DashboardRefresh(const BenchEnv& env,
                                            const WorldMap& world, Rng& rng) {
  const auto& countries = world.country_ids();
  Date anchor = env.period.last.AddDays(-static_cast<int>(rng.Uniform(365)));

  AnalysisQuery timeseries;  // Fig. 2: updates per day, last 90 days
  timeseries.range = DateRange(anchor.AddDays(-89), anchor);
  timeseries.group_date = true;

  AnalysisQuery choropleth;  // Fig. 3: per-country totals, last 30 days
  choropleth.range = DateRange(anchor.AddDays(-29), anchor);
  choropleth.group_country = true;

  AnalysisQuery histogram;  // Fig. 4: road type x update type breakdown
  histogram.range = DateRange(anchor.AddDays(-29), anchor);
  histogram.group_road_type = true;
  histogram.group_update_type = true;

  AnalysisQuery detail;  // Fig. 5: one country's daily mix, last 7 days
  detail.range = DateRange(anchor.AddDays(-6), anchor);
  detail.countries = {countries[rng.Uniform(countries.size())]};
  detail.group_date = true;
  detail.group_update_type = true;

  return {timeseries, choropleth, histogram, detail};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchEnv env = BenchEnv::FromArgs(static_cast<int>(args.size()),
                                    args.data());
  if (quick) {
    env.data_dir = env::JoinPath(env.data_dir, "quick");
    env.period = DateRange(Date::FromYmd(2020, 1, 1),
                           Date::FromYmd(2021, 12, 31));
    env.synth.period = env.period;
  }

  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);
  index->pager()->ResetStats();

  const int refreshes = quick ? 8 : 40;
  Rng rng(env.seed);
  std::vector<AnalysisQuery> queries;
  for (int i = 0; i < refreshes; ++i) {
    for (AnalysisQuery& q : DashboardRefresh(env, *world, rng)) {
      queries.push_back(std::move(q));
    }
  }

  QueryExecutor executor(index.get(), /*cache=*/nullptr, world.get());

  // ---- cold pass: every cube from disk, both paths. Also the
  // correctness gate: identical rows and identical transfer accounting.
  IoStats naive_io, batched_io;
  int64_t naive_cold_cpu = 0, batched_cold_cpu = 0;
  for (const AnalysisQuery& q : queries) {
    CubeSlice slice = SliceFor(q, *world);

    StopWatch naive_watch;
    NaiveResult naive =
        NaiveExecute(*index, executor, q, slice, /*resident=*/nullptr);
    naive_cold_cpu += naive_watch.ElapsedMicros();
    naive_io += naive.io;

    auto result = executor.Execute(q);
    RASED_CHECK(result.ok()) << result.status().ToString();
    batched_cold_cpu += result.value().stats.cpu_micros;
    batched_io += result.value().stats.io;

    RASED_CHECK(RowsMatch(result.value().rows, naive.groups))
        << "batched path diverged from naive reference on " << q.ToString();
  }

  RASED_CHECK(batched_io.page_reads == naive_io.page_reads)
      << "transfer accounting diverged";
  RASED_CHECK(batched_io.bytes_read == naive_io.bytes_read)
      << "transfer accounting diverged";
  RASED_CHECK(batched_io.read_ops < batched_io.page_reads)
      << "coalescing never merged adjacent pages";
  RASED_CHECK(batched_io.simulated_device_micros <=
              naive_io.simulated_device_micros)
      << "batched path charged more device time than serial";

  double cold_device_ratio =
      static_cast<double>(naive_io.simulated_device_micros) /
      static_cast<double>(batched_io.simulated_device_micros);

  // ---- warm pass: every workload cube resident on both sides; measure
  // pure CPU (planning + aggregation).
  std::unordered_map<CubeKey, DataCube, CubeKeyHash> resident;
  CacheOptions cache_options;
  cache_options.policy = CachePolicy::kLru;
  cache_options.byte_budget = uint64_t{1} << 40;  // effectively unbounded
  CubeCache cache(cache_options);
  // Insert with each cube's page from a pinned snapshot so the executor's
  // page-validated probes hit (a page-less insert would never validate).
  CatalogSnapshot warm_snapshot = index->Snapshot();
  for (const AnalysisQuery& q : queries) {
    for (const CubeKey& key : executor.PlanFor(q).cubes) {
      if (resident.find(key) != resident.end()) continue;
      auto cube = index->ReadCube(key);
      RASED_CHECK(cube.ok());
      cache.Insert(key, warm_snapshot.PageOf(key).value_or(kInvalidPageId),
                   DataCube(cube.value()));
      resident.emplace(key, std::move(cube).value());
    }
  }
  QueryExecutor warm_executor(index.get(), &cache, world.get());

  int64_t naive_warm_cpu = 0, warm_cpu = 0;
  uint64_t warm_page_reads = 0;
  for (const AnalysisQuery& q : queries) {
    CubeSlice slice = SliceFor(q, *world);
    StopWatch naive_watch;
    NaiveResult naive = NaiveExecute(*index, executor, q, slice, &resident);
    naive_warm_cpu += naive_watch.ElapsedMicros();

    auto result = warm_executor.Execute(q);
    RASED_CHECK(result.ok());
    warm_cpu += result.value().stats.cpu_micros;
    warm_page_reads += result.value().stats.io.page_reads;
    RASED_CHECK(RowsMatch(result.value().rows, naive.groups))
        << "warm batched path diverged on " << q.ToString();
  }
  RASED_CHECK(warm_page_reads == 0) << "warm pass still touched disk";

  double warm_cpu_ratio = static_cast<double>(naive_warm_cpu) /
                          static_cast<double>(warm_cpu > 0 ? warm_cpu : 1);

  PrintHeader(
      "Query hot path: batched cube I/O + dense aggregation kernels",
      StrFormat("%zu dashboard queries (%d refreshes x 4 panels), device "
                "model %lld us/page; cold = device micros, warm = CPU",
                queries.size(), refreshes,
                static_cast<long long>(env.device.read_latency_us)));
  PrintRow({"regime", "naive", "batched+kernels", "speedup"});
  PrintRow({"cold (device)",
            FmtMillis(static_cast<double>(naive_io.simulated_device_micros) /
                      1000.0),
            FmtMillis(static_cast<double>(batched_io.simulated_device_micros) /
                      1000.0),
            StrFormat("%.2fx", cold_device_ratio)});
  PrintRow({"cold (ops)", FmtCount(static_cast<double>(naive_io.read_ops)),
            FmtCount(static_cast<double>(batched_io.read_ops)),
            StrFormat("%.2fx",
                      static_cast<double>(naive_io.read_ops) /
                          static_cast<double>(batched_io.read_ops))});
  PrintRow({"warm (cpu)",
            FmtMillis(static_cast<double>(naive_warm_cpu) / 1000.0),
            FmtMillis(static_cast<double>(warm_cpu) / 1000.0),
            StrFormat("%.2fx", warm_cpu_ratio)});

  PrintJsonLine(
      "query_hotpath",
      {{"queries", static_cast<double>(queries.size())},
       {"cold_naive_device_ms",
        static_cast<double>(naive_io.simulated_device_micros) / 1000.0},
       {"cold_batched_device_ms",
        static_cast<double>(batched_io.simulated_device_micros) / 1000.0},
       {"cold_device_speedup", cold_device_ratio},
       {"page_reads", static_cast<double>(batched_io.page_reads)},
       {"naive_read_ops", static_cast<double>(naive_io.read_ops)},
       {"batched_read_ops", static_cast<double>(batched_io.read_ops)},
       {"cold_naive_cpu_ms", static_cast<double>(naive_cold_cpu) / 1000.0},
       {"cold_batched_cpu_ms",
        static_cast<double>(batched_cold_cpu) / 1000.0},
       {"warm_naive_cpu_ms", static_cast<double>(naive_warm_cpu) / 1000.0},
       {"warm_batched_cpu_ms", static_cast<double>(warm_cpu) / 1000.0},
       {"warm_cpu_speedup", warm_cpu_ratio}});

  // The CI gate: deterministic facts only. Device-model time is a pure
  // function of the workload, so the >=2x cold bar cannot flake; warm CPU
  // is host wall clock and is reported, not gated.
  RASED_CHECK(cold_device_ratio >= 2.0)
      << "cold device-model speedup " << cold_device_ratio << " < 2x";

  std::printf(
      "\nExpected shape: time-series panels plan runs of adjacent daily\n"
      "pages, so coalescing cuts device ops ~6x there (weekly rollup pages\n"
      "break each month into runs); grouped panels aggregate through the\n"
      "dense kernels instead of per-cell visits, which is where the warm\n"
      "CPU ratio comes from.\n");
  return 0;
}
