// Ablation — level optimizer exactness (DESIGN.md §3.1).
//
// RASED's optimizer is an exact DP over the query window. This ablation
// compares it against (a) the flat all-daily plan and (b) a simple greedy
// top-down cover (grab fully contained yearly cubes, then monthly, then
// weekly, then daily — with no cache awareness), measuring plan size and
// expected disk fetches.

#include "bench_common.h"
#include "index/temporal_key.h"

using namespace rased;
using namespace rased::bench;

namespace {

// Greedy top-down cover, the "obvious" heuristic a first implementation
// would use. Correct but cache-oblivious and not always minimal.
std::vector<CubeKey> GreedyCover(const TemporalIndex& index,
                                 const DateRange& range) {
  std::vector<CubeKey> cover;
  std::vector<DateRange> pending = {range};
  for (Level level : {Level::kYearly, Level::kMonthly, Level::kWeekly,
                      Level::kDaily}) {
    std::vector<DateRange> next;
    for (const DateRange& gap : pending) {
      if (gap.empty()) continue;
      std::vector<CubeKey> keys;
      for (const CubeKey& key : KeysCoveredBy(level, gap)) {
        if (index.Contains(key)) keys.push_back(key);
      }
      if (keys.empty()) {
        next.push_back(gap);
        continue;
      }
      // Contiguous keys at one level; gaps remain before and after.
      cover.insert(cover.end(), keys.begin(), keys.end());
      next.push_back(DateRange(gap.first, keys.front().range().first.prev()));
      next.push_back(DateRange(keys.back().range().last.next(), gap.last));
    }
    pending = std::move(next);
  }
  return cover;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);

  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(256, env.schema);
  CubeCache cache(cache_options);
  Status s = cache.Warm(index.get());
  RASED_CHECK(s.ok()) << s.ToString();

  LevelOptimizer with_cache(index.get(), &cache);
  LevelOptimizer no_cache(index.get(), nullptr);

  PrintHeader("Ablation: level optimizer",
              "mean cubes per plan / mean expected disk fetches over " +
                  std::to_string(env.queries_per_point) + " random windows");
  PrintRow({"window", "flat", "greedy", "DP (no cache)", "DP (cached)"});

  for (int years : {1, 4, 16}) {
    Rng rng(env.seed + 900 + static_cast<uint64_t>(years));
    double flat_cubes = 0, greedy_cubes = 0, dp_cubes = 0, dp_disk = 0;
    for (int i = 0; i < env.queries_per_point; ++i) {
      AnalysisQuery q = RandomCellQuery(env, *world, rng, years * 365);
      DateRange window = q.range.Intersect(index->coverage());
      flat_cubes += static_cast<double>(no_cache.PlanFlat(window).cubes.size());
      greedy_cubes += static_cast<double>(GreedyCover(*index, window).size());
      dp_cubes += static_cast<double>(no_cache.Plan(window).cubes.size());
      QueryPlan cached_plan = with_cache.Plan(window);
      dp_disk += static_cast<double>(cached_plan.expected_disk());
    }
    double n = env.queries_per_point;
    PrintRow({StrFormat("%d year%s", years, years > 1 ? "s" : ""),
              FmtCount(flat_cubes / n), FmtCount(greedy_cubes / n),
              FmtCount(dp_cubes / n),
              StrFormat("%.1f disk", dp_disk / n)});
  }

  std::printf(
      "\nExpected: greedy and DP agree on cube counts for aligned windows\n"
      "(the hierarchy nests cleanly), but only the cache-aware DP drives\n"
      "expected disk fetches toward zero by preferring resident cubes.\n");
  return 0;
}
