// Figures 2 & 3 — the Country Analysis example (Section IV-A, Example 1).
//
//   SELECT U.Country, U.ElementType, COUNT(*)
//   FROM UpdateList U
//   WHERE U.Date BETWEEN 2021-01-01 AND 2021-12-31
//     AND U.UpdateType IN [New, Update]
//   GROUP BY U.Country, U.ElementType
//
// Regenerates the paper's bar-chart (Figure 2) and pivot-table (Figure 3)
// renderings from the synthetic 16-year history and reports the query's
// execution statistics.

#include "bench_common.h"
#include "dashboard/render.h"
#include "osm/road_types.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);
  RoadTypeTable roads(env.schema.num_road_types);

  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(512, env.schema);
  CubeCache cache(cache_options);
  Status s = cache.Warm(index.get());
  RASED_CHECK(s.ok()) << s.ToString();
  index->pager()->ResetStats();
  QueryExecutor executor(index.get(), &cache, world.get());

  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 12, 31));
  // "newly created or modified": every type except deletions.
  q.update_types = {UpdateType::kNew, UpdateType::kGeometry,
                    UpdateType::kMetadata};
  q.group_country = true;
  q.group_element_type = true;
  q.group_update_type = true;  // needed for the Created/Modified pivot

  auto result = executor.Execute(q);
  RASED_CHECK(result.ok()) << result.status().ToString();

  RenderContext ctx{world.get(), &roads};

  PrintHeader("Figure 3: Country Analysis, table format",
              "synthetic history; top countries by 2021 road-network "
              "updates");
  std::printf("%s\n",
              RenderCountryElementPivot(result.value(), ctx, 12).c_str());

  PrintHeader("Figure 2: Country Analysis, bar chart format", "");
  // The bar chart shows per-country totals.
  AnalysisQuery bars = q;
  bars.group_element_type = false;
  bars.group_update_type = false;
  auto bar_result = executor.Execute(bars);
  RASED_CHECK(bar_result.ok());
  std::printf("%s\n",
              RenderBarChart(bar_result.value(), bars, ctx, 50, 12).c_str());

  std::printf("query stats: %llu cubes (%llu cached, %llu disk), %s\n",
              static_cast<unsigned long long>(
                  result.value().stats.cubes_total),
              static_cast<unsigned long long>(
                  result.value().stats.cubes_from_cache),
              static_cast<unsigned long long>(
                  result.value().stats.cubes_from_disk),
              FmtMillis(result.value().stats.total_micros() / 1000.0)
                  .c_str());
  std::printf(
      "\nExpected shape (paper): way edits dominate (Fig 3 shows ways\n"
      "outnumbering nodes ~100x and relations ~10000x), and the most\n"
      "actively mapped countries (US, India, Germany, ...) lead.\n");
  return 0;
}
