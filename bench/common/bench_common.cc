#include "bench_common.h"

#include <cinttypes>
#include <cstdio>

#include "dashboard/json_writer.h"
#include "io/env.h"
#include "synth/update_generator.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {
namespace bench {

BenchEnv BenchEnv::FromArgs(int argc, char** argv) {
  BenchEnv env;
  Status s = env.config.ParseArgs(argc, argv);
  if (!s.ok()) {
    RASED_LOG(Error) << "bad arguments: " << s.ToString()
                     << " (expected key=value pairs)";
  }
  env.data_dir = env.config.GetString("bench_dir", "rased_bench_data");
  env.seed = static_cast<uint64_t>(env.config.GetInt("seed", 42));
  env.queries_per_point =
      static_cast<int>(env.config.GetInt("queries_per_point", 20));
  env.device.read_latency_us = env.config.GetInt("device_us", 2000);
  env.device.write_latency_us = env.device.read_latency_us;

  env.synth.seed = env.seed;
  env.synth.period = env.period;
  env.synth.base_updates_per_day =
      env.config.GetDouble("base_updates_per_day", 40.0);
  return env;
}

std::unique_ptr<WorldMap> MakeWorld(const BenchEnv& env) {
  auto world = std::make_unique<WorldMap>(env.schema.num_countries);
  ActivityModel model(env.synth, world.get(), env.schema.num_road_types);
  model.InitRoadNetworkSizes(world.get());
  return world;
}

std::unique_ptr<TemporalIndex> OpenOrBuildIndex(const BenchEnv& env,
                                                int num_levels) {
  TemporalIndexOptions options;
  options.schema = env.schema;
  options.num_levels = num_levels;
  options.dir = env::JoinPath(env.data_dir,
                              StrFormat("index_L%d", num_levels));
  options.device = env.device;

  if (env::FileExists(env::JoinPath(options.dir, "catalog"))) {
    auto index = TemporalIndex::Open(options);
    RASED_CHECK(index.ok()) << index.status().ToString();
    return std::move(index).value();
  }

  std::fprintf(stderr,
               "[bench] building %d-level index for %s in %s "
               "(one-time, cached for later runs)...\n",
               num_levels, env.period.ToString().c_str(),
               options.dir.c_str());
  StopWatch watch;
  auto index = TemporalIndex::Create(options);
  RASED_CHECK(index.ok()) << index.status().ToString();

  auto world = MakeWorld(env);
  CubeSynthesizer synth(env.synth, world.get(), env.schema);
  for (Date d = env.period.first; d <= env.period.last; d = d.next()) {
    Status s = index.value()->AppendDay(d, synth.DayCube(d));
    RASED_CHECK(s.ok()) << s.ToString();
  }
  Status s = index.value()->Sync();
  RASED_CHECK(s.ok()) << s.ToString();
  index.value()->pager()->ResetStats();
  std::fprintf(stderr, "[bench] built in %.1f s (%" PRIu64 " cubes)\n",
               watch.ElapsedSeconds(),
               index.value()->StorageStats().total_cubes);
  return std::move(index).value();
}

std::unique_ptr<BaselineDbms> OpenOrBuildDbms(const BenchEnv& env,
                                              uint64_t* num_records) {
  DbmsOptions options;
  options.dir = env::JoinPath(env.data_dir, "dbms");
  options.device = env.device;
  // Figure 10 matches the PostgreSQL buffer size to RASED's cache. The
  // RASED side runs a BytesForCubes(512, schema) byte budget — at bench
  // scale 512 dense images + headers ~= 24 MiB — so the baseline gets the
  // same 24 MiB of shared buffers — and, as in the paper's deployment,
  // the heap is much larger than the buffer pool.
  options.buffer_pool_bytes = static_cast<uint64_t>(
      env.config.GetInt("dbms_pool_bytes", 24 << 20));

  if (env::FileExists(env::JoinPath(options.dir, "heap.pages"))) {
    auto dbms = BaselineDbms::Open(options);
    RASED_CHECK(dbms.ok()) << dbms.status().ToString();
    if (num_records != nullptr) *num_records = dbms.value()->num_records();
    return std::move(dbms).value();
  }

  std::fprintf(stderr,
               "[bench] loading baseline DBMS heap in %s (one-time)...\n",
               options.dir.c_str());
  StopWatch watch;
  auto dbms = BaselineDbms::Create(options);
  RASED_CHECK(dbms.ok()) << dbms.status().ToString();

  auto world = MakeWorld(env);
  RoadTypeTable roads(env.schema.num_road_types);
  UpdateGenerator gen(env.synth, world.get(), &roads);
  uint64_t total = 0;
  for (Date d = env.period.first; d <= env.period.last; d = d.next()) {
    auto records = gen.GenerateDayRecords(d);
    total += records.size();
    Status s = dbms.value()->Append(records);
    RASED_CHECK(s.ok()) << s.ToString();
  }
  Status s = dbms.value()->Sync();
  RASED_CHECK(s.ok()) << s.ToString();
  dbms.value()->pager()->ResetStats();
  std::fprintf(stderr,
               "[bench] loaded %" PRIu64 " rows (%" PRIu64
               " pages) in %.1f s\n",
               total, dbms.value()->num_pages(), watch.ElapsedSeconds());
  if (num_records != nullptr) *num_records = total;
  return std::move(dbms).value();
}

AnalysisQuery RandomCellQuery(const BenchEnv& env, const WorldMap& world,
                              Rng& rng, int span_days) {
  AnalysisQuery q;
  // One value per dimension — the paper's "each query retrieves only one
  // data cube cell" default, isolating retrieval cost.
  const auto& countries = world.country_ids();
  q.countries = {countries[rng.Uniform(countries.size())]};
  q.element_types = {static_cast<ElementType>(rng.Uniform(3))};
  q.road_types = {static_cast<RoadTypeId>(rng.Uniform(env.schema.num_road_types))};
  q.update_types = {static_cast<UpdateType>(rng.Uniform(4))};

  // Window of span_days ending uniformly within the last year (recent
  // windows are what the recency cache is built for).
  Date last = env.period.last.AddDays(-static_cast<int>(rng.Uniform(365)));
  Date first = last.AddDays(-(span_days - 1));
  if (first < env.period.first) first = env.period.first;
  q.range = DateRange(first, last);
  return q;
}

QueryLoadResult RunQueryLoad(QueryExecutor* executor, const BenchEnv& env,
                             const WorldMap& world, Rng& rng, int n,
                             int span_days) {
  QueryLoadResult out;
  int64_t total_micros = 0;
  uint64_t total_reads = 0, total_cubes = 0, total_hits = 0;
  for (int i = 0; i < n; ++i) {
    AnalysisQuery q = RandomCellQuery(env, world, rng, span_days);
    auto result = executor->Execute(q);
    RASED_CHECK(result.ok()) << result.status().ToString();
    total_micros += result.value().stats.total_micros();
    total_reads += result.value().stats.io.page_reads;
    total_cubes += result.value().stats.cubes_total;
    total_hits += result.value().stats.cubes_from_cache;
  }
  out.mean_millis = static_cast<double>(total_micros) / n / 1000.0;
  out.mean_page_reads = static_cast<double>(total_reads) / n;
  out.mean_cubes = static_cast<double>(total_cubes) / n;
  out.mean_cache_hits = static_cast<double>(total_hits) / n;
  return out;
}

void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%16s", cell.c_str());
  }
  std::printf("\n");
}

void PrintJsonLine(const std::string& bench,
                   const std::vector<std::pair<std::string, double>>& fields) {
  JsonWriter w;
  w.BeginObject();
  w.KV("bench", std::string_view(bench));
  for (const auto& [key, value] : fields) w.KV(std::string_view(key), value);
  w.EndObject();
  std::printf("%s\n", std::move(w).Finish().c_str());
}

std::string FmtMillis(double ms) {
  if (ms >= 1000.0) return StrFormat("%.2f s", ms / 1000.0);
  return StrFormat("%.3f ms", ms);
}

std::string FmtCount(double v) { return StrFormat("%.1f", v); }

}  // namespace bench
}  // namespace rased
