#ifndef RASED_BENCH_COMMON_BENCH_COMMON_H_
#define RASED_BENCH_COMMON_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/cube_cache.h"
#include "core/rased.h"
#include "dbms/baseline_dbms.h"
#include "geo/world_map.h"
#include "index/temporal_index.h"
#include "query/analysis_query.h"
#include "query/query_executor.h"
#include "synth/cube_synthesizer.h"
#include "synth/synth_options.h"
#include "util/config.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/str_util.h"

namespace rased {
namespace bench {

/// Shared knobs for every figure harness. Values come from `key=value`
/// command-line arguments or RASED_* environment variables (util/Config).
struct BenchEnv {
  Config config;

  /// Workspace holding the (expensive, therefore cached-on-disk) bench
  /// indexes. Default: ./rased_bench_data.
  std::string data_dir;

  /// The 16-year evaluation window of Section VIII.
  DateRange period{Date::FromYmd(2006, 1, 1), Date::FromYmd(2021, 12, 31)};

  /// Scaled cube schema used by the multi-year benches. Experiments vary
  /// the number of cubes touched, never the cube width, so a narrow cube
  /// keeps 16-year builds laptop-sized; see DESIGN.md §5 and the
  /// paper-scale projection in bench_table_index_size.
  CubeSchema schema{3, 32, 16, 4};

  /// Device cost model: 2 ms per cube fetch (see io/pager.h).
  DeviceModel device{2000, 2000, 0.0};

  SynthOptions synth;

  uint64_t seed = 42;
  int queries_per_point = 20;

  static BenchEnv FromArgs(int argc, char** argv);
};

/// Opens (building and persisting on first use) the 16-year bench index
/// with the given number of hierarchy levels. The build streams
/// CubeSynthesizer day cubes through the normal AppendDay maintenance
/// path, so rollup cubes are produced exactly as in production.
std::unique_ptr<TemporalIndex> OpenOrBuildIndex(const BenchEnv& env,
                                                int num_levels);

/// Opens (building on first use) the baseline DBMS heap loaded with the
/// record-path synthetic stream for the same period.
std::unique_ptr<BaselineDbms> OpenOrBuildDbms(const BenchEnv& env,
                                              uint64_t* num_records);

/// The world map matching env.schema (also carries road-network sizes).
std::unique_ptr<WorldMap> MakeWorld(const BenchEnv& env);

/// One random "single cube cell" query as used throughout Section VIII:
/// one value per dimension, a window of `span_days` ending uniformly in
/// the last year of coverage.
AnalysisQuery RandomCellQuery(const BenchEnv& env, const WorldMap& world,
                              Rng& rng, int span_days);

/// Runs `n` queries and returns mean response time in milliseconds under
/// the device model (cpu + simulated device), plus mean I/O count.
struct QueryLoadResult {
  double mean_millis = 0;
  double mean_page_reads = 0;
  double mean_cubes = 0;
  double mean_cache_hits = 0;
};
QueryLoadResult RunQueryLoad(QueryExecutor* executor, const BenchEnv& env,
                             const WorldMap& world, Rng& rng, int n,
                             int span_days);

/// Series-table printing helpers: every figure bench emits one header and
/// aligned rows so EXPERIMENTS.md can quote the output verbatim.
void PrintHeader(const std::string& title, const std::string& note);
void PrintRow(const std::vector<std::string>& cells);

/// Machine-readable companion to the table: one JSON object per call, on
/// its own stdout line, shaped {"bench": <name>, <field>: <number>, ...}.
/// Scrapers pick series out of bench output by matching the "bench" tag,
/// so every sweep point should emit exactly one line.
void PrintJsonLine(const std::string& bench,
                   const std::vector<std::pair<std::string, double>>& fields);

std::string FmtMillis(double ms);
std::string FmtCount(double v);

}  // namespace bench
}  // namespace rased

#endif  // RASED_BENCH_COMMON_BENCH_COMMON_H_
