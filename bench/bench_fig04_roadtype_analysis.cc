// Figure 4 — the Road Type Analysis example (Section IV-A, Example 2).
//
//   SELECT U.RoadType, U.ElementType, COUNT(*)
//   FROM UpdateList U
//   WHERE U.Date AFTER 2018-01-01 AND U.Country = USA
//     AND U.UpdateType IN [New, Update]
//   GROUP BY U.RoadType, U.ElementType

#include "bench_common.h"
#include "dashboard/render.h"
#include "osm/road_types.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);
  RoadTypeTable roads(env.schema.num_road_types);

  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(512, env.schema);
  CubeCache cache(cache_options);
  Status s = cache.Warm(index.get());
  RASED_CHECK(s.ok()) << s.ToString();
  index->pager()->ResetStats();
  QueryExecutor executor(index.get(), &cache, world.get());

  auto usa = world->FindByName("United States");
  RASED_CHECK(usa.ok());

  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2018, 1, 1), env.period.last);
  q.countries = {usa.value()};
  q.update_types = {UpdateType::kNew, UpdateType::kGeometry,
                    UpdateType::kMetadata};
  q.group_road_type = true;
  q.group_element_type = true;

  auto result = executor.Execute(q);
  RASED_CHECK(result.ok()) << result.status().ToString();

  RenderContext ctx{world.get(), &roads};
  PrintHeader("Figure 4: Road Type Analysis (USA, since 2018)",
              "per-road-type update counts, bar chart per road type");

  // Aggregate chart: road types only.
  AnalysisQuery bars = q;
  bars.group_element_type = false;
  auto bar_result = executor.Execute(bars);
  RASED_CHECK(bar_result.ok());
  std::printf("%s\n",
              RenderBarChart(bar_result.value(), bars, ctx, 50, 15).c_str());

  std::printf("detailed table (road type x element type):\n%s\n",
              RenderTable(result.value(), q, ctx, TableSort::kCount, 25)
                  .c_str());
  std::printf("query stats: %llu cubes, %s\n",
              static_cast<unsigned long long>(
                  result.value().stats.cubes_total),
              FmtMillis(result.value().stats.total_micros() / 1000.0)
                  .c_str());
  std::printf(
      "\nExpected shape (paper): residential and service roads receive the\n"
      "bulk of the edits, followed by footways/paths and the arterial\n"
      "classes.\n");
  return 0;
}
