// Figure 7 — Setting RASED cache size.
//
// Query response time as a function of the cube cache size, for query
// loads spanning 1, 3, 6 and 12 months. The paper sweeps 128 MB .. 4 GB,
// "which can fit from 32 to 1,000 data cubes"; the cache budget is in
// bytes now, so the sweep sets byte budgets sized for the same cube
// counts and labels them with the paper-scale byte equivalents (slots x
// 4.4 MB paper cubes). With adaptive compression each budget typically
// holds *more* cubes than its dense equivalent — the saturation knee
// moves left.

#include "bench_common.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);

  const int kSlotSweep[] = {32, 64, 128, 256, 512, 1000};
  const int kSpansMonths[] = {1, 3, 6, 12};

  PrintHeader("Figure 7: query response time vs cache size",
              "RASED full system; device model " +
                  StrFormat("%lld us/page;",
                            static_cast<long long>(
                                env.device.read_latency_us)) +
                  " each point = mean of " +
                  std::to_string(env.queries_per_point) +
                  " single-cell queries");
  PrintRow({"cache (cubes)", "paper equiv", "1 month", "3 months",
            "6 months", "12 months"});

  for (int slots : kSlotSweep) {
    CacheOptions cache_options;
    cache_options.byte_budget = CacheOptions::BytesForCubes(
        static_cast<size_t>(slots), env.schema);
    cache_options.policy = CachePolicy::kRasedRecency;
    CubeCache cache(cache_options);
    Status s = cache.Warm(index.get());
    RASED_CHECK(s.ok()) << s.ToString();
    index->pager()->ResetStats();

    QueryExecutor executor(index.get(), &cache, world.get());
    std::vector<std::string> row = {
        std::to_string(slots),
        StrFormat("%.0f MB", slots * 4.39),  // 549,000-cell paper cubes
    };
    for (int months : kSpansMonths) {
      // Same query set for every cache size, so rows are comparable.
      Rng rng(env.seed + static_cast<uint64_t>(months));
      QueryLoadResult r = RunQueryLoad(&executor, env, *world, rng,
                                       env.queries_per_point, months * 30);
      row.push_back(FmtMillis(r.mean_millis));
    }
    PrintRow(row);
  }

  std::printf(
      "\nExpected shape (paper): response time falls as the cache grows and\n"
      "saturates once the working set fits; longer windows saturate at\n"
      "larger cache sizes (512 MB / 1 GB / 2 GB for 3/6/12 months).\n");
  return 0;
}
