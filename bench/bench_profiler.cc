// Always-on profiler overhead — the "free to leave on" claim.
//
// The continuous profiler (src/obs/profiler.cc, DESIGN.md section 13)
// samples every registered thread's CPU time at 99 Hz from a SIGPROF
// handler. This bench proves the three properties that make it safe to
// run in production, on the same warm-cache query workload the other
// dashboard benches use:
//
//   * overhead  — the process CPU time of a fixed query workload with
//     the profiler armed is within 2% of the unprofiled cost. Measured
//     as many short adjacent off/on phase pairs and gated on the paired
//     totals (sum of on over sum of off): host frequency drift moves
//     slowly, so adjacent ~100ms phases see the same machine and the
//     drift cancels out of the ratio. CPU time, not wall clock, because
//     the profiler's cost IS CPU — handler + reaper — while wall clock
//     also charges scheduler noise from a busy host;
//   * fidelity  — query *results* are bit-identical profiled vs not: an
//     FNV-1a hash over every result row must match exactly, because a
//     sampling observer must never perturb the data path;
//   * delivery  — the handler/ring/reaper pipeline keeps up: the sample
//     drop rate across the profiled phases stays under 1%, and the
//     retained report actually contains folded stacks.
//
// Usage: bench_profiler [--quick] [key=value ...]
//   --quick: 2-year index, short phases (CI smoke gate; emits the
//   "profiler" JSON line behind BENCH_profiler.json).

#include <ctime>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "io/env.h"
#include "obs/profiler.h"
#include "util/clock.h"

using namespace rased;
using namespace rased::bench;

namespace {

/// FNV-1a over every field of every row: the cross-phase fidelity stamp.
uint64_t HashRows(uint64_t hash, const std::vector<ResultRow>& rows) {
  auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  for (const ResultRow& row : rows) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(row.element_type)));
    mix(static_cast<uint64_t>(
        static_cast<uint32_t>(row.date.days_since_epoch())));
    mix(row.has_date ? 1 : 0);
    mix(static_cast<uint64_t>(static_cast<uint32_t>(row.country)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(row.road_type)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(row.update_type)));
    mix(row.count);
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(row.percentage));
    std::memcpy(&bits, &row.percentage, sizeof(bits));
    mix(bits);
  }
  return hash;
}

/// Process-wide CPU micros (all threads — so a profiled phase is charged
/// the reaper's work too, which is exactly the overhead under test).
int64_t ProcessCpuMicros() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

/// Runs the workload `loops` times; returns CPU + wall micros and the row
/// hash (identical every pass on a warm static cache, so one hash
/// describes the whole phase).
struct PhaseResult {
  int64_t cpu_micros = 0;
  int64_t wall_micros = 0;
  uint64_t row_hash = 1469598103934665603ULL;  // FNV-1a offset basis
};

PhaseResult RunPhase(QueryExecutor* executor,
                     const std::vector<AnalysisQuery>& queries, int loops) {
  PhaseResult out;
  const int64_t cpu_start = ProcessCpuMicros();
  StopWatch watch;
  for (int loop = 0; loop < loops; ++loop) {
    uint64_t hash = 1469598103934665603ULL;
    for (const AnalysisQuery& query : queries) {
      auto result = executor->Execute(query);
      RASED_CHECK(result.ok()) << result.status().ToString();
      hash = HashRows(hash, result.value().rows);
    }
    if (loop == 0) {
      out.row_hash = hash;
    } else {
      RASED_CHECK(hash == out.row_hash) << "rows diverged across loops";
    }
  }
  out.wall_micros = watch.ElapsedMicros();
  out.cpu_micros = ProcessCpuMicros() - cpu_start;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchEnv env = BenchEnv::FromArgs(static_cast<int>(args.size()),
                                    args.data());
  if (quick) {
    env.data_dir = env::JoinPath(env.data_dir, "quick");
    env.period = DateRange(Date::FromYmd(2020, 1, 1),
                           Date::FromYmd(2021, 12, 31));
    env.synth.period = env.period;
  }

  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);

  // Warm static cache, as in bench_concurrent_queries: query cost is a
  // pure function of the query, which is what makes the row hash and the
  // makespan comparable across phases.
  CacheOptions cache_options;
  const size_t cache_cubes =
      static_cast<size_t>(env.config.GetInt("cache_slots", 128));
  cache_options.byte_budget =
      CacheOptions::BytesForCubes(cache_cubes, env.schema);
  cache_options.policy = CachePolicy::kRasedRecency;
  CubeCache cache(cache_options);
  Status warm = cache.Warm(index.get());
  RASED_CHECK(warm.ok()) << warm.ToString();

  QueryExecutor executor(index.get(), &cache, world.get());

  const int num_queries = quick ? 48 : 128;
  const int span_days = 60;
  const int reps = quick ? 32 : 16;
  // Pairs dropped from EACH tail of the per-rep delta distribution
  // before summing: a host frequency step landing inside one phase of a
  // pair produces an outlier delta that carries no profiler signal.
  // Trimming both tails equally keeps the estimator unbiased.
  const int trim = quick ? 3 : 2;
  Rng rng(env.seed);
  std::vector<AnalysisQuery> queries;
  queries.reserve(static_cast<size_t>(num_queries));
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(RandomCellQuery(env, *world, rng, span_days));
  }

  // Calibrate loops so one phase is short enough (~100ms quick) that an
  // adjacent off/on pair sees the same machine (frequency drift moves
  // slowly), while many pairs still land hundreds of 99 Hz samples in
  // total and average the per-phase noise out of the paired ratio.
  PhaseResult calibration = RunPhase(&executor, queries, 1);
  const int64_t target_micros = quick ? 100 * 1000 : 300 * 1000;
  const int loops = static_cast<int>(std::max<int64_t>(
      1, target_micros / std::max<int64_t>(1, calibration.wall_micros)));

  ProfilerOptions profiler_options;  // 99 Hz default, no registry
  const uint64_t samples_before = Profiler::Global()->samples_total();
  const uint64_t dropped_before = Profiler::Global()->dropped_total();

  PrintHeader(
      "Continuous profiler: overhead, fidelity, delivery",
      StrFormat("%d warm-cache queries x %d loops/phase, %d interleaved "
                "rep pairs, %d Hz CPU-time sampling",
                num_queries, loops, reps, profiler_options.sample_hz));
  PrintRow({"rep", "off cpu", "on cpu", "delta", "on wall"});

  std::vector<PhaseResult> offs;
  std::vector<PhaseResult> ons;
  offs.reserve(static_cast<size_t>(reps));
  ons.reserve(static_cast<size_t>(reps));
  uint64_t folded_stacks = 0;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleaved A/B so thermal or host drift degrades both phases.
    PhaseResult off = RunPhase(&executor, queries, loops);
    RASED_CHECK(off.row_hash == calibration.row_hash)
        << "unprofiled rows diverged from calibration";

    Status started = Profiler::Global()->Start(profiler_options);
    RASED_CHECK(started.ok()) << started.ToString();
    PhaseResult on;
    {
      ProfilerThreadScope scope("bench-profiler");
      on = RunPhase(&executor, queries, loops);
      if (rep == reps - 1) {
        // Delivery check while still registered and running: the merged
        // in-progress + retained windows must hold real stacks.
        auto report = Profiler::Global()->RetainedReport(
            static_cast<int64_t>(reps) * 2 * target_micros);
        RASED_CHECK(report.ok()) << report.status().ToString();
        folded_stacks = report.value().folded.size();
      }
    }
    Profiler::Global()->Stop();
    RASED_CHECK(on.row_hash == off.row_hash)
        << "profiled rows diverged from unprofiled rows at rep " << rep;

    offs.push_back(off);
    ons.push_back(on);
    PrintRow({std::to_string(rep),
              FmtMillis(static_cast<double>(off.cpu_micros) / 1000.0),
              FmtMillis(static_cast<double>(on.cpu_micros) / 1000.0),
              StrFormat("%+.1f%%",
                        100.0 *
                            (static_cast<double>(on.cpu_micros) /
                                 static_cast<double>(off.cpu_micros) -
                             1.0)),
              FmtMillis(static_cast<double>(on.wall_micros) / 1000.0)});
  }

  const uint64_t samples =
      Profiler::Global()->samples_total() - samples_before;
  const uint64_t dropped =
      Profiler::Global()->dropped_total() - dropped_before;
  // Paired-totals ratio over the trimmed pairs: every on-phase ran
  // adjacent to its off-phase, so slow-machine epochs inflate numerator
  // and denominator together, and dropping the `trim` most extreme
  // delta pairs from each tail removes frequency-step outliers.
  std::vector<size_t> order(offs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return static_cast<double>(ons[a].cpu_micros) * offs[b].cpu_micros <
           static_cast<double>(ons[b].cpu_micros) * offs[a].cpu_micros;
  });
  int64_t total_off = 0;
  int64_t total_on = 0;
  int64_t total_off_wall = 0;
  int64_t total_on_wall = 0;
  for (size_t i = static_cast<size_t>(trim); i < order.size() - trim; ++i) {
    total_off += offs[order[i]].cpu_micros;
    total_on += ons[order[i]].cpu_micros;
    total_off_wall += offs[order[i]].wall_micros;
    total_on_wall += ons[order[i]].wall_micros;
  }
  const double overhead = static_cast<double>(total_on) /
                              static_cast<double>(std::max<int64_t>(
                                  1, total_off)) -
                          1.0;
  const double drop_rate =
      samples + dropped == 0
          ? 0.0
          : static_cast<double>(dropped) /
                static_cast<double>(samples + dropped);

  PrintJsonLine(
      "profiler",
      {{"queries", static_cast<double>(num_queries)},
       {"loops", static_cast<double>(loops)},
       {"reps", static_cast<double>(reps)},
       {"pairs_kept", static_cast<double>(reps - 2 * trim)},
       {"sample_hz", static_cast<double>(profiler_options.sample_hz)},
       {"off_cpu_ms", static_cast<double>(total_off) / 1000.0},
       {"on_cpu_ms", static_cast<double>(total_on) / 1000.0},
       {"off_wall_ms", static_cast<double>(total_off_wall) / 1000.0},
       {"on_wall_ms", static_cast<double>(total_on_wall) / 1000.0},
       {"overhead_pct", 100.0 * overhead},
       {"samples", static_cast<double>(samples)},
       {"dropped", static_cast<double>(dropped)},
       {"drop_rate_pct", 100.0 * drop_rate},
       {"folded_stacks", static_cast<double>(folded_stacks)}});

  // The acceptance gates for the always-on claim.
  RASED_CHECK(overhead <= 0.02)
      << "profiler CPU overhead " << 100.0 * overhead << "% exceeds 2%";
  RASED_CHECK(samples > 0) << "no samples delivered across profiled phases";
  RASED_CHECK(drop_rate < 0.01)
      << "drop rate " << 100.0 * drop_rate << "% exceeds 1%";
  RASED_CHECK(folded_stacks > 0) << "retained report held no stacks";

  std::printf(
      "\nExpected shape: on/off CPU deltas hover around 0%% (99 Hz costs\n"
      "~microseconds per second of CPU); rows hash identically in every\n"
      "phase, so the profiler observes queries without perturbing them.\n");
  return 0;
}
