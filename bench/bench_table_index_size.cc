// Section VI-A index size and maintenance accounting (textual claims).
//
// Reproduces the paper's stated numbers:
//  * each cube holds 540,000 precomputed values in ~4 MB (one disk page);
//  * 16 years of OSM yield ~6,000+ daily, 850+ weekly, 200+ monthly and 16
//    yearly cubes — close to 7,000 nodes, ~28 GB total;
//  * daily maintenance costs 1 page write; week/month/year boundaries cost
//    up to 8/6/13 I/Os.
//
// Node counts come from the real catalog logic (KeysCoveredBy); cube size
// from the paper-scale schema; boundary I/Os from a real maintained index.

#include "bench_common.h"
#include "index/temporal_key.h"
#include "io/env.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);

  CubeSchema paper = CubeSchema::PaperScale();
  PrintHeader("Section VI-A: index size accounting (paper scale)",
              "cube counts over 2006-01-01 .. 2021-12-31");

  std::printf("cube schema: %s\n", paper.ToString().c_str());
  std::printf("  paper claim: 540,000 values, ~4 MB per cube\n\n");

  DateRange period = env.period;
  size_t daily = KeysCoveredBy(Level::kDaily, period).size();
  size_t weekly = KeysCoveredBy(Level::kWeekly, period).size();
  size_t monthly = KeysCoveredBy(Level::kMonthly, period).size();
  size_t yearly = KeysCoveredBy(Level::kYearly, period).size();
  size_t total = daily + weekly + monthly + yearly;
  double total_gb = static_cast<double>(total) * paper.cube_bytes() /
                    (1024.0 * 1024.0 * 1024.0);

  PrintRow({"level", "nodes", "paper claim"});
  PrintRow({"daily", std::to_string(daily), "6,000+"});
  PrintRow({"weekly", std::to_string(weekly), "850+ (cal. wks)"});
  PrintRow({"monthly", std::to_string(monthly), "200+"});
  PrintRow({"yearly", std::to_string(yearly), "16"});
  PrintRow({"total", std::to_string(total), "close to 7,000"});
  std::printf("\ntotal storage at paper scale: %.1f GB (paper: ~28 GB; the\n"
              "delta comes from the paper's calendar weeks vs RASED's four\n"
              "month-clipped weeks)\n",
              total_gb);

  // Boundary I/O measurement on a real maintained index (tiny cubes; I/O
  // *counts* are schema-independent).
  CubeSchema tiny{3, 8, 4, 4};
  TempDir scratch("viA");
  TemporalIndexOptions options;
  options.schema = tiny;
  options.num_levels = 4;
  options.dir = env::JoinPath(scratch.path(), "idx");
  options.device = DeviceModel::None();
  auto index = TemporalIndex::Create(options);
  RASED_CHECK(index.ok()) << index.status().ToString();
  DataCube cube(tiny);
  cube.Add(0, 0, 0, 0, 1);

  uint64_t plain_r = 0, plain_w = 0, week_r = 0, week_w = 0;
  uint64_t month_r = 0, month_w = 0, year_r = 0, year_w = 0;
  for (Date d = Date::FromYmd(2021, 1, 1); d <= Date::FromYmd(2021, 12, 31);
       d = d.next()) {
    index.value()->pager()->ResetStats();
    Status s = index.value()->AppendDay(d, cube);
    RASED_CHECK(s.ok()) << s.ToString();
    const IoStats& io = index.value()->pager()->stats();
    if (d.is_year_end()) {
      year_r = std::max(year_r, io.page_reads);
      year_w = std::max(year_w, io.page_writes);
    } else if (d.is_month_end()) {
      month_r = std::max(month_r, io.page_reads);
      month_w = std::max(month_w, io.page_writes);
    } else if (d.is_week_end()) {
      week_r = std::max(week_r, io.page_reads);
      week_w = std::max(week_w, io.page_writes);
    } else {
      plain_r = std::max(plain_r, io.page_reads);
      plain_w = std::max(plain_w, io.page_writes);
    }
  }
  std::printf("\nmaintenance I/O per AppendDay (measured max over 2021):\n");
  PrintRow({"boundary", "reads", "writes", "paper claim"});
  PrintRow({"plain day", std::to_string(plain_r), std::to_string(plain_w),
            "1 I/O"});
  PrintRow({"week end", std::to_string(week_r), std::to_string(week_w),
            "up to 8"});
  PrintRow({"month end", std::to_string(month_r), std::to_string(month_w),
            "up to 6"});
  PrintRow({"year end", std::to_string(year_r), std::to_string(year_w),
            "up to 13"});
  std::printf(
      "\n(A fresh day costs 2 writes here because page allocation zero-\n"
      "fills before the payload write; the paper counts it as one. The\n"
      "month/year rows include every rollup firing on that day — a Feb 28\n"
      "month end also closes a week, and Dec 31 also closes a month —\n"
      "while the paper quotes each rollup in isolation.)\n");
  return 0;
}
