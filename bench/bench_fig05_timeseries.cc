// Figure 5 — the Comparative Time-Series example (Section IV-A,
// Example 3).
//
//   SELECT U.Country, U.Date, Percentage(*)
//   FROM UpdateList U
//   WHERE U.Date BETWEEN 2020-01-01 AND 2021-12-31
//     AND U.Country IN [Germany, Singapore, Qatar]
//   GROUP BY U.Country, U.Date
//
// The scaled bench world keeps a proportional prefix of each continent's
// country list, so when Singapore/Qatar are not present at this scale the
// bench substitutes the first available countries of the same continents
// and says so.

#include "bench_common.h"
#include "dashboard/render.h"
#include "osm/road_types.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);
  RoadTypeTable roads(env.schema.num_road_types);

  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(512, env.schema);
  CubeCache cache(cache_options);
  Status s = cache.Warm(index.get());
  RASED_CHECK(s.ok()) << s.ToString();
  index->pager()->ResetStats();
  QueryExecutor executor(index.get(), &cache, world.get());

  std::vector<ZoneId> countries;
  std::vector<std::string> names;
  for (const char* wanted : {"Germany", "Singapore", "Qatar"}) {
    auto id = world->FindByName(wanted);
    if (id.ok()) {
      countries.push_back(id.value());
      names.push_back(wanted);
    }
  }
  // Substitutes for countries trimmed out of the scaled world.
  for (const char* fallback : {"China", "India", "France"}) {
    if (countries.size() >= 3) break;
    auto id = world->FindByName(fallback);
    if (id.ok()) {
      countries.push_back(id.value());
      names.push_back(std::string(fallback) + " (substitute)");
    }
  }

  AnalysisQuery q;
  q.range = DateRange(Date::FromYmd(2020, 1, 1), Date::FromYmd(2021, 12, 31));
  q.countries = countries;
  q.group_country = true;
  q.group_date = true;
  q.percentage = true;

  auto result = executor.Execute(q);
  RASED_CHECK(result.ok()) << result.status().ToString();

  RenderContext ctx{world.get(), &roads};
  std::string note = "series: ";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) note += ", ";
    note += names[i];
  }
  PrintHeader("Figure 5: comparative % of daily road-network changes "
              "(2020-2021)", note);
  std::printf("%s\n",
              RenderTimeSeries(result.value(), q, ctx, 90, 18).c_str());

  std::printf("query stats: %llu cubes (daily plan: date grouping), %s\n",
              static_cast<unsigned long long>(
                  result.value().stats.cubes_total),
              FmtMillis(result.value().stats.total_micros() / 1000.0)
                  .c_str());
  std::printf(
      "\nExpected shape (paper): small countries show spikier relative\n"
      "change (one mapathon moves a large fraction of a small network);\n"
      "large countries produce a smoother band.\n");
  return 0;
}
