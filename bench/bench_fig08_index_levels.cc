// Figure 8 — Setting RASED number of levels.
//
// Storage needed for the hierarchical index when varying the covered
// period from 1 to 16 years and the number of levels from 1 (flat daily)
// to 4 (daily+weekly+monthly+yearly). The paper's observation: the three
// extra levels cost only ~15% over the flat index at 16 years.
//
// Storage ratios are independent of cube width, so this bench builds real
// indexes with a deliberately tiny cube schema and additionally projects
// byte sizes at the paper's 4.4 MB cube scale.

#include "bench_common.h"
#include "io/env.h"
#include "util/str_util.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  CubeSchema tiny{3, 8, 4, 4};
  TempDir scratch("fig08");

  const int kYears[] = {1, 2, 4, 8, 16};
  PrintHeader("Figure 8: index storage vs covered period and levels",
              "cubes built through real AppendDay maintenance; "
              "'xN.NN' = size relative to the flat index; "
              "paper-scale column projects 4-level size at 4.39 MB/cube");
  PrintRow({"years", "flat (1L)", "2 levels", "3 levels", "4 levels",
            "4L/flat", "paper-scale"});

  int run = 0;
  for (int years : kYears) {
    DateRange period(Date::FromYmd(2006, 1, 1),
                     Date::FromYmd(2005 + years, 12, 31));
    uint64_t bytes[5] = {0, 0, 0, 0, 0};
    uint64_t four_level_cubes = 0;
    for (int levels = 1; levels <= 4; ++levels) {
      TemporalIndexOptions options;
      options.schema = tiny;
      options.num_levels = levels;
      options.dir = env::JoinPath(scratch.path(),
                                  StrFormat("idx-%d", run++));
      options.device = DeviceModel::None();
      auto index = TemporalIndex::Create(options);
      RASED_CHECK(index.ok()) << index.status().ToString();
      DataCube cube(tiny);
      cube.Add(0, 0, 0, 0, 1);
      for (Date d = period.first; d <= period.last; d = d.next()) {
        Status s = index.value()->AppendDay(d, cube);
        RASED_CHECK(s.ok()) << s.ToString();
      }
      IndexStorageStats stats = index.value()->StorageStats();
      bytes[levels] = stats.file_bytes;
      if (levels == 4) four_level_cubes = stats.total_cubes;
    }
    double ratio = static_cast<double>(bytes[4]) / bytes[1];
    PrintRow({std::to_string(years),
              StrFormat("%.1f MB", bytes[1] / 1048576.0),
              StrFormat("%.1f MB", bytes[2] / 1048576.0),
              StrFormat("%.1f MB", bytes[3] / 1048576.0),
              StrFormat("%.1f MB", bytes[4] / 1048576.0),
              StrFormat("x%.3f", ratio),
              StrFormat("%.1f GB", four_level_cubes * 4.39 / 1024.0)});
  }

  std::printf(
      "\nExpected shape (paper): the extra levels add little beyond the\n"
      "daily level — a 4-level 16-year index takes ~1.15x the flat index\n"
      "(weeks add ~1/7th, months ~1/30th, years ~1/365th).\n");
  return 0;
}
