// Micro-benchmarks (google-benchmark) for RASED's hot primitives:
// cube operations, record codec, crawler-facing XML parsing, zone lookup,
// R-tree queries, CRC, and date arithmetic.

#include <benchmark/benchmark.h>

#include "collect/daily_crawler.h"
#include "cube/data_cube.h"
#include "geo/rtree.h"
#include "geo/world_map.h"
#include "io/crc32c.h"
#include "osm/osc.h"
#include "synth/update_generator.h"
#include "util/date.h"
#include "util/logging.h"
#include "util/random.h"

namespace rased {
namespace {

void BM_CubeAdd(benchmark::State& state) {
  CubeSchema schema = CubeSchema::BenchScale();
  DataCube cube(schema);
  Rng rng(1);
  std::vector<std::array<uint32_t, 4>> coords(1024);
  for (auto& c : coords) {
    c = {static_cast<uint32_t>(rng.Uniform(3)),
         static_cast<uint32_t>(rng.Uniform(schema.num_countries)),
         static_cast<uint32_t>(rng.Uniform(schema.num_road_types)),
         static_cast<uint32_t>(rng.Uniform(4))};
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& c = coords[i++ & 1023];
    cube.Add(c[0], c[1], c[2], c[3]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CubeAdd);

void BM_CubeMerge(benchmark::State& state) {
  CubeSchema schema = CubeSchema::BenchScale();
  DataCube a(schema), b(schema);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    b.Add(rng.Uniform(3), rng.Uniform(schema.num_countries),
          rng.Uniform(schema.num_road_types), rng.Uniform(4), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Merge(b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(schema.cube_bytes()));
}
BENCHMARK(BM_CubeMerge);

void BM_CubeSliceSum(benchmark::State& state) {
  CubeSchema schema = CubeSchema::BenchScale();
  DataCube cube(schema);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    cube.Add(rng.Uniform(3), rng.Uniform(schema.num_countries),
             rng.Uniform(schema.num_road_types), rng.Uniform(4), 1);
  }
  CubeSlice slice;
  slice.countries = {5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube.SumSlice(slice));
  }
}
BENCHMARK(BM_CubeSliceSum);

void BM_RecordCodec(benchmark::State& state) {
  UpdateRecord r;
  r.element_type = ElementType::kWay;
  r.date = Date::FromYmd(2021, 6, 15);
  r.country = 42;
  r.lat = 44.9;
  r.lon = -93.2;
  r.road_type = 8;
  r.update_type = UpdateType::kGeometry;
  r.changeset_id = 123456789;
  unsigned char buf[UpdateRecord::kEncodedBytes];
  for (auto _ : state) {
    r.EncodeTo(buf);
    benchmark::DoNotOptimize(UpdateRecord::DecodeFrom(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordCodec);

void BM_DailyCrawl(benchmark::State& state) {
  WorldMap world(64);
  RoadTypeTable roads(32);
  SynthOptions options;
  options.base_updates_per_day = 2000.0;
  options.period = DateRange(Date::FromYmd(2021, 1, 1),
                             Date::FromYmd(2021, 12, 31));
  UpdateGenerator gen(options, &world, &roads);
  DayArtifacts artifacts = gen.GenerateDayArtifacts(Date::FromYmd(2021, 6, 1));
  ChangesetStore changesets;
  Status s = changesets.AddFromXml(artifacts.changesets_xml);
  RASED_CHECK(s.ok());
  DailyCrawler crawler(&world, &roads);
  size_t records = 0;
  for (auto _ : state) {
    std::vector<UpdateRecord> out;
    Status st = crawler.CrawlDiff(artifacts.osc_xml, changesets, &out);
    RASED_CHECK(st.ok());
    records = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(artifacts.osc_xml.size()));
  state.counters["records"] = static_cast<double>(records);
}
BENCHMARK(BM_DailyCrawl);

void BM_ZoneLookup(benchmark::State& state) {
  WorldMap world(305);
  Rng rng(4);
  std::vector<LatLon> points(1024);
  for (auto& p : points) {
    p = LatLon{rng.NextDouble() * 180 - 90, rng.NextDouble() * 360 - 180};
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.CountryAt(points[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZoneLookup);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree(16);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      tree.Insert(LatLon{rng.NextDouble() * 100, rng.NextDouble() * 100},
                  static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RTreeInsert);

void BM_RTreeSearch(benchmark::State& state) {
  RTree tree(16);
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) {
    tree.Insert(LatLon{rng.NextDouble() * 100, rng.NextDouble() * 100},
                static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    double lat = rng.NextDouble() * 95;
    double lon = rng.NextDouble() * 95;
    benchmark::DoNotOptimize(
        tree.SearchIds(BoundingBox{lat, lon, lat + 5, lon + 5}));
  }
}
BENCHMARK(BM_RTreeSearch);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(196608);

void BM_DateRoundTrip(benchmark::State& state) {
  int32_t day = 0;
  for (auto _ : state) {
    Date d = Date::FromDays(10000 + (day++ % 10000));
    benchmark::DoNotOptimize(Date::FromYmd(d.year(), d.month(), d.day()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DateRoundTrip);

}  // namespace
}  // namespace rased

BENCHMARK_MAIN();
