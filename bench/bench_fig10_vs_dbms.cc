// Figure 10 — RASED vs a traditional DBMS.
//
// The same single-cell analysis queries executed by full RASED and by the
// baseline row-store (full scan + hash aggregation through a buffer pool —
// the plan PostgreSQL runs for the paper's multi-attribute GROUP BY
// signature). The paper's PostgreSQL sits at ~1000 s regardless of the
// window because it always scans all 12 B rows; RASED answers from a
// handful of cubes. At our scaled row count the gap is smaller in absolute
// terms but the shape is identical: scan cost flat in the window and
// orders of magnitude above RASED.

#include <algorithm>

#include "bench_common.h"

using namespace rased;
using namespace rased::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  uint64_t rows = 0;
  auto dbms = OpenOrBuildDbms(env, &rows);
  auto world = MakeWorld(env);

  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(
      static_cast<size_t>(env.config.GetInt("cache_slots", 512)), env.schema);
  CubeCache cache(cache_options);
  Status s = cache.Warm(index.get());
  RASED_CHECK(s.ok()) << s.ToString();
  index->pager()->ResetStats();
  QueryExecutor rased_full(index.get(), &cache, world.get());

  int dbms_queries = static_cast<int>(env.config.GetInt(
      "dbms_queries_per_point", 3));

  const int kYears[] = {1, 2, 4, 8, 16};
  PrintHeader(
      "Figure 10: RASED vs traditional DBMS",
      StrFormat("baseline heap: %llu rows, %llu pages; both systems share "
                "the same %lld us/page device model",
                static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(dbms->num_pages()),
                static_cast<long long>(env.device.read_latency_us)));
  PrintRow({"window", "DBMS", "(reads)", "RASED", "(reads)", "speedup"});

  for (int years : kYears) {
    int span_days = years * 365;
    // DBMS side.
    Rng rng_d(env.seed + 7000 + static_cast<uint64_t>(years));
    int64_t dbms_micros = 0;
    uint64_t dbms_reads = 0;
    for (int i = 0; i < dbms_queries; ++i) {
      AnalysisQuery q = RandomCellQuery(env, *world, rng_d, span_days);
      auto result = dbms->Execute(q);
      RASED_CHECK(result.ok()) << result.status().ToString();
      dbms_micros += result.value().stats.total_micros();
      dbms_reads += result.value().stats.io.page_reads;
    }
    double dbms_ms = static_cast<double>(dbms_micros) / dbms_queries / 1000.0;

    // RASED side.
    Rng rng_r(env.seed + 7000 + static_cast<uint64_t>(years));
    QueryLoadResult r = RunQueryLoad(&rased_full, env, *world, rng_r,
                                     env.queries_per_point, span_days);

    PrintRow({StrFormat("%d year%s", years, years > 1 ? "s" : ""),
              FmtMillis(dbms_ms),
              FmtCount(static_cast<double>(dbms_reads) / dbms_queries),
              FmtMillis(r.mean_millis), FmtCount(r.mean_page_reads),
              StrFormat("x%.0f", dbms_ms / std::max(r.mean_millis, 1e-6))});
  }

  std::printf(
      "\nExpected shape (paper): the DBMS is flat in the window (it always\n"
      "scans the whole heap) while RASED stays in milliseconds; at the\n"
      "paper's 12-billion-row scale the same architecture gap is 5-6\n"
      "orders of magnitude (~1000 s vs ~10 ms).\n");
  return 0;
}
