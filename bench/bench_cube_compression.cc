// Adaptive cube compression: encoded storage vs the dense baseline.
//
// Builds two indexes over byte-identical synthetic data and identical
// page geometry, differing only in the write-time encoding policy:
//
//   dense    CubeEncodingPolicy::kForceDense — every cube stored as its
//            raw 8-bytes-per-cell image (the pre-compression layout).
//   adaptive CubeEncodingPolicy::kAdaptive — per-cube encoding chosen
//            from measured density (sparse COO / delta-varint / dense),
//            exact blob length in the catalog (DESIGN.md section 11).
//
// The workload is the dashboard hot path: the paper's four panel shapes
// (90-day time series, country choropleth, road x update histogram,
// single-country 7-day detail) anchored at random recent dates. Each
// query runs cold on both indexes; rows must be bit-identical, and the
// adaptive side must cut BOTH transferred bytes and page reads by >= 3x
// — compression that does not shrink I/O is not compression.
//
// Cross-checks folded in (all gated, all deterministic):
//   - batched vs serial: the executor's batched fetch path must match a
//     serial per-cube ReadCube + per-cell fold reference, row for row;
//   - scalar vs AVX2: the whole adaptive pass re-runs with the vector
//     kernels forced off; every row must be bit-identical (64-bit adds
//     are associative mod 2^64, so any divergence is a kernel bug);
//   - warm CPU: with every workload cube cache-resident the adaptive
//     index must aggregate within 10% of the dense index (min-of-N
//     makespans) — decoding must never leak into the warm path.
//
// Usage: bench_cube_compression [--quick] [key=value ...]

#include <cinttypes>
#include <map>
#include <memory>
#include <string_view>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "cube/agg_kernels.h"
#include "cube/cube_codec.h"
#include "index/temporal_key.h"
#include "io/env.h"
#include "util/clock.h"

using namespace rased;
using namespace rased::bench;

namespace {

/// Builds (or reopens) the bench index under `subdir` with the given
/// write-time encoding policy. Identical synthetic stream and page
/// geometry for both policies, so every difference below is the encoding.
std::unique_ptr<TemporalIndex> OpenOrBuildEncodedIndex(
    const BenchEnv& env, CubeEncodingPolicy policy, const char* subdir) {
  TemporalIndexOptions options;
  options.schema = env.schema;
  options.num_levels = 4;
  options.dir = env::JoinPath(env.data_dir, subdir);
  options.device = env.device;
  options.encoding = policy;

  if (env::FileExists(env::JoinPath(options.dir, "catalog"))) {
    auto index = TemporalIndex::Open(options);
    RASED_CHECK(index.ok()) << index.status().ToString();
    return std::move(index).value();
  }
  std::fprintf(stderr, "[bench] building %s index in %s (one-time)...\n",
               subdir, options.dir.c_str());
  auto index = TemporalIndex::Create(options);
  RASED_CHECK(index.ok()) << index.status().ToString();
  auto world = MakeWorld(env);
  CubeSynthesizer synth(env.synth, world.get(), env.schema);
  for (Date d = env.period.first; d <= env.period.last; d = d.next()) {
    Status s = index.value()->AppendDay(d, synth.DayCube(d));
    RASED_CHECK(s.ok()) << s.ToString();
  }
  Status s = index.value()->Sync();
  RASED_CHECK(s.ok()) << s.ToString();
  index.value()->pager()->ResetStats();
  return std::move(index).value();
}

/// The four dashboard panel shapes (Figures 2-5) anchored at one date.
std::vector<AnalysisQuery> DashboardRefresh(const BenchEnv& env,
                                            const WorldMap& world, Rng& rng) {
  const auto& countries = world.country_ids();
  Date anchor = env.period.last.AddDays(-static_cast<int>(rng.Uniform(365)));

  AnalysisQuery timeseries;
  timeseries.range = DateRange(anchor.AddDays(-89), anchor);
  timeseries.group_date = true;

  AnalysisQuery choropleth;
  choropleth.range = DateRange(anchor.AddDays(-29), anchor);
  choropleth.group_country = true;

  AnalysisQuery histogram;
  histogram.range = DateRange(anchor.AddDays(-29), anchor);
  histogram.group_road_type = true;
  histogram.group_update_type = true;

  AnalysisQuery detail;
  detail.range = DateRange(anchor.AddDays(-6), anchor);
  detail.countries = {countries[rng.Uniform(countries.size())]};
  detail.group_date = true;
  detail.group_update_type = true;

  return {timeseries, choropleth, histogram, detail};
}

bool RowsEqual(const std::vector<ResultRow>& a,
               const std::vector<ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].element_type != b[i].element_type ||
        a[i].has_date != b[i].has_date ||
        (a[i].has_date && !(a[i].date == b[i].date)) ||
        a[i].country != b[i].country || a[i].road_type != b[i].road_type ||
        a[i].update_type != b[i].update_type || a[i].count != b[i].count) {
      return false;
    }
  }
  return true;
}

/// Serial per-cube reference for the batched fetch path: reads every
/// planned cube with the single-cube ReadCube (which decodes through the
/// non-batched code path) and folds per cell into a sorted map, then
/// checks the executor's rows against it.
void CheckAgainstSerialReference(const TemporalIndex& index,
                                 const QueryExecutor& executor,
                                 const WorldMap& world,
                                 const AnalysisQuery& q,
                                 const std::vector<ResultRow>& rows) {
  CubeSlice slice;
  for (ElementType t : q.element_types) {
    slice.element_types.push_back(static_cast<uint32_t>(t));
  }
  if (q.countries.empty()) {
    slice.countries.push_back(kZoneUnknown);
    for (ZoneId id : world.country_ids()) slice.countries.push_back(id);
  } else {
    for (ZoneId z : q.countries) slice.countries.push_back(z);
  }
  for (RoadTypeId r : q.road_types) slice.road_types.push_back(r);
  for (UpdateType u : q.update_types) {
    slice.update_types.push_back(static_cast<uint32_t>(u));
  }
  slice.Normalize();

  using GroupKey = std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t>;
  std::map<GroupKey, uint64_t> groups;
  for (const CubeKey& key : executor.PlanFor(q).cubes) {
    int32_t date_key = q.group_date ? key.range().first.days_since_epoch()
                                    : ResultRow::kNoGroup;
    auto cube = index.ReadCube(key);
    RASED_CHECK(cube.ok()) << cube.status().ToString();
    cube.value().ForEachCell(slice, [&](uint32_t et, uint32_t co, uint32_t rt,
                                        uint32_t ut, uint64_t count) {
      groups[GroupKey{q.group_element_type ? static_cast<int32_t>(et)
                                           : ResultRow::kNoGroup,
                      date_key,
                      q.group_country ? static_cast<int32_t>(co)
                                      : ResultRow::kNoGroup,
                      q.group_road_type ? static_cast<int32_t>(rt)
                                        : ResultRow::kNoGroup,
                      q.group_update_type ? static_cast<int32_t>(ut)
                                          : ResultRow::kNoGroup}] += count;
    });
  }
  RASED_CHECK(rows.size() == groups.size())
      << "batched row count diverged from serial reference on "
      << q.ToString();
  size_t i = 0;
  for (const auto& [gk, count] : groups) {
    const ResultRow& row = rows[i++];
    int32_t date_key =
        row.has_date ? row.date.days_since_epoch() : ResultRow::kNoGroup;
    RASED_CHECK((GroupKey{row.element_type, date_key, row.country,
                          row.road_type, row.update_type} == gk) &&
                row.count == count)
        << "batched path diverged from serial reference on " << q.ToString();
  }
}

struct ColdPass {
  std::vector<std::vector<ResultRow>> rows;
  IoStats io;
  int64_t device_micros = 0;
};

ColdPass RunCold(TemporalIndex* index, const WorldMap& world,
                 const std::vector<AnalysisQuery>& queries) {
  QueryExecutor executor(index, /*cache=*/nullptr, &world);
  ColdPass out;
  for (const AnalysisQuery& q : queries) {
    auto result = executor.Execute(q);
    RASED_CHECK(result.ok()) << result.status().ToString();
    out.io += result.value().stats.io;
    out.rows.push_back(std::move(result.value().rows));
  }
  out.device_micros = out.io.simulated_device_micros;
  return out;
}

/// Minimum warm-cache (fully resident) makespan over `repeats` passes.
int64_t WarmMakespan(TemporalIndex* index, const WorldMap& world,
                     const std::vector<AnalysisQuery>& queries, int repeats) {
  CacheOptions cache_options;
  cache_options.policy = CachePolicy::kLru;
  cache_options.byte_budget = uint64_t{1} << 40;  // hold everything
  CubeCache cache(cache_options);
  QueryExecutor executor(index, &cache, &world);
  CatalogSnapshot snapshot = index->Snapshot();
  for (const AnalysisQuery& q : queries) {
    for (const CubeKey& key : executor.PlanFor(q).cubes) {
      if (cache.Contains(key)) continue;
      auto cube = index->ReadCube(key);
      RASED_CHECK(cube.ok()) << cube.status().ToString();
      cache.Insert(key, snapshot.PageOf(key).value_or(kInvalidPageId),
                   std::move(cube).value());
    }
  }
  int64_t best = 0;
  for (int r = 0; r < repeats; ++r) {
    StopWatch watch;
    uint64_t page_reads = 0;
    for (const AnalysisQuery& q : queries) {
      auto result = executor.Execute(q);
      RASED_CHECK(result.ok()) << result.status().ToString();
      page_reads += result.value().stats.io.page_reads;
    }
    RASED_CHECK(page_reads == 0) << "warm pass still touched disk";
    int64_t elapsed = watch.ElapsedMicros();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchEnv env = BenchEnv::FromArgs(static_cast<int>(args.size()),
                                    args.data());
  if (quick) {
    env.data_dir = env::JoinPath(env.data_dir, "quick");
    env.period = DateRange(Date::FromYmd(2020, 1, 1),
                           Date::FromYmd(2021, 12, 31));
    env.synth.period = env.period;
  }

  auto dense = OpenOrBuildEncodedIndex(env, CubeEncodingPolicy::kForceDense,
                                       "index_dense");
  auto adaptive = OpenOrBuildEncodedIndex(env, CubeEncodingPolicy::kAdaptive,
                                          "index_adaptive");
  auto world = MakeWorld(env);

  const int refreshes = quick ? 8 : 40;
  Rng rng(env.seed);
  std::vector<AnalysisQuery> queries;
  for (int i = 0; i < refreshes; ++i) {
    for (AnalysisQuery& q : DashboardRefresh(env, *world, rng)) {
      queries.push_back(std::move(q));
    }
  }

  // ---- storage footprint (pure catalog accounting).
  IndexStorageStats dense_stats = dense->StorageStats();
  IndexStorageStats adaptive_stats = adaptive->StorageStats();
  RASED_CHECK(dense_stats.total_cubes == adaptive_stats.total_cubes)
      << "the two indexes hold different cube populations";
  double storage_ratio = static_cast<double>(dense_stats.encoded_bytes) /
                         static_cast<double>(adaptive_stats.encoded_bytes);

  // ---- cold passes: identical rows, >= 3x less I/O.
  dense->pager()->ResetStats();
  adaptive->pager()->ResetStats();
  ColdPass dense_cold = RunCold(dense.get(), *world, queries);
  ColdPass adaptive_cold = RunCold(adaptive.get(), *world, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    RASED_CHECK(RowsEqual(dense_cold.rows[i], adaptive_cold.rows[i]))
        << "adaptive rows diverged from dense baseline on "
        << queries[i].ToString();
  }

  // Batched fetch vs serial per-cube reference, on the adaptive index.
  {
    QueryExecutor executor(adaptive.get(), /*cache=*/nullptr, world.get());
    for (size_t i = 0; i < queries.size(); ++i) {
      CheckAgainstSerialReference(*adaptive, executor, *world, queries[i],
                                  adaptive_cold.rows[i]);
    }
  }

  // Scalar vs AVX2: identical rows with the vector kernels forced off.
  kernels::ForceScalarKernelsForTesting(true);
  ColdPass scalar_cold = RunCold(adaptive.get(), *world, queries);
  kernels::ForceScalarKernelsForTesting(false);
  for (size_t i = 0; i < queries.size(); ++i) {
    RASED_CHECK(RowsEqual(scalar_cold.rows[i], adaptive_cold.rows[i]))
        << "scalar and " << kernels::ActiveKernels().name
        << " kernels disagreed on " << queries[i].ToString();
  }

  double bytes_ratio = static_cast<double>(dense_cold.io.bytes_read) /
                       static_cast<double>(adaptive_cold.io.bytes_read);
  double pages_ratio = static_cast<double>(dense_cold.io.page_reads) /
                       static_cast<double>(adaptive_cold.io.page_reads);
  double device_ratio = static_cast<double>(dense_cold.device_micros) /
                        static_cast<double>(adaptive_cold.device_micros);

  // ---- warm passes: all cubes resident; decoding must not leak in.
  const int repeats = quick ? 3 : 5;
  int64_t dense_warm = WarmMakespan(dense.get(), *world, queries, repeats);
  int64_t adaptive_warm =
      WarmMakespan(adaptive.get(), *world, queries, repeats);
  double warm_ratio = static_cast<double>(adaptive_warm) /
                      static_cast<double>(dense_warm > 0 ? dense_warm : 1);

  PrintHeader(
      "Adaptive cube compression vs dense baseline",
      StrFormat("%zu dashboard queries (%d refreshes x 4 panels), "
                "%" PRIu64 " cubes/index, device model %lld us/page",
                queries.size(), refreshes, dense_stats.total_cubes,
                static_cast<long long>(env.device.read_latency_us)));
  PrintRow({"metric", "dense", "adaptive", "ratio"});
  PrintRow({"encoded bytes",
            FmtCount(static_cast<double>(dense_stats.encoded_bytes)),
            FmtCount(static_cast<double>(adaptive_stats.encoded_bytes)),
            StrFormat("%.1fx", storage_ratio)});
  PrintRow({"cold bytes_read",
            FmtCount(static_cast<double>(dense_cold.io.bytes_read)),
            FmtCount(static_cast<double>(adaptive_cold.io.bytes_read)),
            StrFormat("%.1fx", bytes_ratio)});
  PrintRow({"cold page_reads",
            FmtCount(static_cast<double>(dense_cold.io.page_reads)),
            FmtCount(static_cast<double>(adaptive_cold.io.page_reads)),
            StrFormat("%.1fx", pages_ratio)});
  PrintRow({"cold device",
            FmtMillis(static_cast<double>(dense_cold.device_micros) / 1000.0),
            FmtMillis(static_cast<double>(adaptive_cold.device_micros) /
                      1000.0),
            StrFormat("%.1fx", device_ratio)});
  PrintRow({"warm makespan",
            FmtMillis(static_cast<double>(dense_warm) / 1000.0),
            FmtMillis(static_cast<double>(adaptive_warm) / 1000.0),
            StrFormat("%.2fx", warm_ratio)});

  PrintJsonLine(
      "cube_compression",
      {{"queries", static_cast<double>(queries.size())},
       {"total_cubes", static_cast<double>(dense_stats.total_cubes)},
       {"dense_encoded_bytes",
        static_cast<double>(dense_stats.encoded_bytes)},
       {"adaptive_encoded_bytes",
        static_cast<double>(adaptive_stats.encoded_bytes)},
       {"storage_ratio", storage_ratio},
       {"dense_bytes_read", static_cast<double>(dense_cold.io.bytes_read)},
       {"adaptive_bytes_read",
        static_cast<double>(adaptive_cold.io.bytes_read)},
       {"bytes_read_ratio", bytes_ratio},
       {"dense_page_reads", static_cast<double>(dense_cold.io.page_reads)},
       {"adaptive_page_reads",
        static_cast<double>(adaptive_cold.io.page_reads)},
       {"page_reads_ratio", pages_ratio},
       {"cold_device_ratio", device_ratio},
       {"warm_dense_cpu_ms", static_cast<double>(dense_warm) / 1000.0},
       {"warm_adaptive_cpu_ms", static_cast<double>(adaptive_warm) / 1000.0},
       {"warm_cpu_ratio", warm_ratio},
       {"avx2_active", kernels::Avx2Active() ? 1.0 : 0.0}});

  // The gates. I/O ratios and rows are pure functions of the workload
  // under the device model, so they cannot flake; the warm bound compares
  // two identical dense-aggregation passes (min-of-N) and only trips if
  // decoding or dispatch overhead leaks into the resident path.
  RASED_CHECK(bytes_ratio >= 3.0)
      << "adaptive encodings cut bytes_read only " << bytes_ratio << "x (< 3x)";
  RASED_CHECK(pages_ratio >= 3.0)
      << "adaptive encodings cut page_reads only " << pages_ratio << "x (< 3x)";
  RASED_CHECK(warm_ratio <= 1.10)
      << "warm-cache makespan regressed " << warm_ratio << "x (> 1.10x)";

  std::printf(
      "\nExpected shape: daily country cubes are ~1-2%% dense, so sparse\n"
      "COO collapses their 13-page dense runs to a single page; weekly and\n"
      "monthly rollups land on delta-varint. The warm ratio stays ~1.0\n"
      "because cache hits aggregate decoded dense cubes on both sides —\n"
      "compression only changes what crosses the device.\n");
  return 0;
}
