// Ablation — cache policy (DESIGN.md §3.2).
//
// The paper's recency policy splits the N slots across levels with
// (alpha, beta, gamma, theta) = (.4, .35, .2, .05). This ablation compares
// it against (a) an all-daily recency cache (alpha = 1, the degenerate
// setting Section VII-B warns about), (b) classic query-driven LRU, and
// (c) no cache, across short and long query windows.

#include "bench_common.h"

using namespace rased;
using namespace rased::bench;

namespace {

QueryLoadResult Run(TemporalIndex* index, CubeCache* cache,
                    const BenchEnv& env, const WorldMap& world,
                    uint64_t seed_salt, int span_days, int n) {
  QueryExecutor executor(index, cache, const_cast<WorldMap*>(&world));
  Rng rng(env.seed + seed_salt);
  return RunQueryLoad(&executor, env, world, rng, n, span_days);
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::FromArgs(argc, argv);
  auto index = OpenOrBuildIndex(env, /*num_levels=*/4);
  auto world = MakeWorld(env);
  size_t slots = static_cast<size_t>(env.config.GetInt("cache_slots", 256));
  const uint64_t budget = CacheOptions::BytesForCubes(slots, env.schema);

  struct Policy {
    const char* name;
    CacheOptions options;
    bool enabled = true;
  };
  std::vector<Policy> policies;
  {
    Policy recency{"recency(a,b,g,t)", CacheOptions{}};
    recency.options.byte_budget = budget;
    policies.push_back(recency);

    Policy all_daily{"all-daily", CacheOptions{}};
    all_daily.options.byte_budget = budget;
    all_daily.options.policy = CachePolicy::kAllDaily;
    policies.push_back(all_daily);

    Policy lru{"LRU", CacheOptions{}};
    lru.options.byte_budget = budget;
    lru.options.policy = CachePolicy::kLru;
    policies.push_back(lru);
  }

  PrintHeader("Ablation: cache policy",
              StrFormat("%zu slots; spans of 1 and 12 months; LRU numbers "
                        "are steady-state (after one warm-up pass)",
                        slots));
  PrintRow({"policy", "1 month", "(hits)", "12 months", "(hits)"});

  for (const Policy& policy : policies) {
    CubeCache cache(policy.options);
    Status s = cache.Warm(index.get());
    RASED_CHECK(s.ok()) << s.ToString();
    index->pager()->ResetStats();

    std::vector<std::string> row = {policy.name};
    for (int months : {1, 12}) {
      if (policy.options.policy == CachePolicy::kLru) {
        // Warm-up pass so LRU reaches steady state — drawn from the same
        // distribution but with a different seed, so the measured pass
        // benefits only from distribution-level locality, not from
        // replaying identical queries.
        Run(index.get(), &cache, env, *world, 1500 + months, months * 30,
            env.queries_per_point);
      }
      QueryLoadResult r = Run(index.get(), &cache, env, *world,
                              500 + months, months * 30,
                              env.queries_per_point);
      row.push_back(FmtMillis(r.mean_millis));
      row.push_back(FmtCount(r.mean_cache_hits));
    }
    PrintRow(row);
  }

  // The (alpha, beta, gamma, theta) trade-off of Section VII-A: more
  // daily slots = finer granularity but shorter covered period; more
  // monthly/yearly slots = longer periods at coarse granularity.
  std::printf("\n(alpha, beta, gamma, theta) sweep, same %zu slots:\n",
              slots);
  struct Split {
    const char* name;
    double a, b, g, t;
  };
  for (const Split& split : std::initializer_list<Split>{
           {"(.8,.1,.1,.0) daily-heavy", .8, .1, .1, .0},
           {"(.4,.35,.2,.05) deployed", .4, .35, .2, .05},
           {"(.1,.2,.5,.2) coarse-heavy", .1, .2, .5, .2}}) {
    CacheOptions sweep_options;
    sweep_options.byte_budget = budget;
    sweep_options.alpha = split.a;
    sweep_options.beta = split.b;
    sweep_options.gamma = split.g;
    sweep_options.theta = split.t;
    CubeCache cache(sweep_options);
    Status s = cache.Warm(index.get());
    RASED_CHECK(s.ok()) << s.ToString();
    std::vector<std::string> row = {split.name};
    for (int months : {1, 12}) {
      QueryLoadResult r = Run(index.get(), &cache, env, *world,
                              500 + months, months * 30,
                              env.queries_per_point);
      row.push_back(FmtMillis(r.mean_millis));
      row.push_back(FmtCount(r.mean_cache_hits));
    }
    PrintRow(row);
  }

  // No cache at all, for reference.
  {
    std::vector<std::string> row = {"none"};
    for (int months : {1, 12}) {
      QueryExecutor executor(index.get(), nullptr, world.get());
      Rng rng(env.seed + 600 + static_cast<uint64_t>(months));
      QueryLoadResult r = RunQueryLoad(&executor, env, *world, rng,
                                       env.queries_per_point, months * 30);
      row.push_back(FmtMillis(r.mean_millis));
      row.push_back("0.0");
    }
    PrintRow(row);
  }

  std::printf(
      "\nExpected: the trade-off of Section VII-A. All-daily covers only\n"
      "the most recent N days, so it wins very short recent windows and\n"
      "collapses on long ones; the mixed (alpha,beta,gamma,theta) split\n"
      "stays strong across window lengths because cached coarse cubes\n"
      "cover months and years; LRU depends entirely on repeated access\n"
      "patterns the static policies get for free.\n");
  return 0;
}
