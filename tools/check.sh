#!/usr/bin/env bash
# Correctness gate for RASED (see DESIGN.md "Correctness tooling").
#
# Runs, in order:
#   1. clang-format --dry-run      (skipped if clang-format is absent)
#   2. clang-tidy over src/        (skipped if clang-tidy is absent)
#   3. plain build + full ctest
#   4. bench_concurrent_queries --quick (scaling/determinism smoke gate)
#   5. bench_query_hotpath --quick (batched-I/O + kernel smoke gate;
#      emits the BENCH_query_hotpath.json trajectory at the repo root)
#   6. ASan+UBSan build + full ctest
#   7. TSan build + concurrency-focused ctest (dashboard/cache/collect/
#      index/warehouse/hotpath suites)
#
# Exit code 0 means every stage that could run passed. Stages whose tool
# is missing are reported as SKIP, not failure, so the script works both
# in the clang-equipped CI image and in gcc-only dev containers.
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build-check)

set -u -o pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=0

note()  { printf '\n==== %s ====\n' "$*"; }
pass()  { printf 'PASS: %s\n' "$*"; }
skip()  { printf 'SKIP: %s\n' "$*"; }
fail()  { printf 'FAIL: %s\n' "$*"; FAILURES=$((FAILURES + 1)); }

# ---------------------------------------------------------------- format --
note "clang-format (dry run)"
if command -v clang-format >/dev/null 2>&1; then
  if git ls-files '*.h' '*.cc' | xargs -r clang-format --dry-run --Werror; then
    pass "clang-format"
  else
    fail "clang-format found formatting violations"
  fi
else
  skip "clang-format not installed"
fi

# ----------------------------------------------------------------- tidy ---
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY_DIR="${PREFIX}-tidy"
  if cmake -B "${TIDY_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null \
      && git ls-files 'src/*.cc' \
         | xargs -r -P "${JOBS}" -n 8 clang-tidy -p "${TIDY_DIR}" --quiet; then
    pass "clang-tidy"
  else
    fail "clang-tidy reported errors"
  fi
else
  skip "clang-tidy not installed"
fi

# ---------------------------------------------------------- build + test --
run_matrix_entry() {
  local name="$1" dir="$2" test_args="$3"
  shift 3
  note "${name}: configure + build + ctest"
  if ! cmake -B "${dir}" -S . "$@" >/dev/null; then
    fail "${name}: cmake configure"
    return
  fi
  if ! cmake --build "${dir}" -j "${JOBS}" >/dev/null; then
    fail "${name}: build"
    return
  fi
  # shellcheck disable=SC2086  # test_args is an intentional word list
  if (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" ${test_args}); then
    pass "${name}"
  else
    fail "${name}: ctest"
  fi
}

run_matrix_entry "plain" "${PREFIX}-plain" "" \
  -DRASED_WERROR=ON

# ------------------------------------------------------ concurrency smoke --
# Quick mode of the worker-pool scaling bench: builds a small index in the
# build tree, then asserts per-query accounting determinism and the >=4x
# 8-thread speedup over the old global-lock baseline.
note "bench_concurrent_queries --quick"
if [ -x "${PREFIX}-plain/bench/bench_concurrent_queries" ]; then
  if "${PREFIX}-plain/bench/bench_concurrent_queries" --quick \
      "bench_dir=${PREFIX}-plain/bench/concurrent_bench_data" >/dev/null; then
    pass "bench_concurrent_queries --quick"
  else
    fail "bench_concurrent_queries --quick"
  fi
else
  skip "bench_concurrent_queries not built (plain build failed?)"
fi

# ---------------------------------------------------- query hotpath smoke --
# Quick mode of the query hot-path bench: asserts the batched executor's
# rows and transfer counts match the serial per-cube reference, that
# adjacent page reads coalesce (read_ops < page_reads), and that the cold
# device-model time improves >= 2x. Its "query_hotpath" JSON line becomes
# the BENCH_query_hotpath.json trajectory tracked at the repo root.
note "bench_query_hotpath --quick"
if [ -x "${PREFIX}-plain/bench/bench_query_hotpath" ]; then
  HOTPATH_OUT="$("${PREFIX}-plain/bench/bench_query_hotpath" --quick \
      "bench_dir=${PREFIX}-plain/bench/hotpath_bench_data")"
  if [ $? -eq 0 ]; then
    printf '%s\n' "${HOTPATH_OUT}" \
      | grep '"bench":"query_hotpath"' > BENCH_query_hotpath.json
    pass "bench_query_hotpath --quick (trajectory in BENCH_query_hotpath.json)"
  else
    fail "bench_query_hotpath --quick"
  fi
else
  skip "bench_query_hotpath not built (plain build failed?)"
fi

run_matrix_entry "asan+ubsan" "${PREFIX}-asan" "" \
  "-DRASED_SANITIZE=address;undefined"

# TSan: the concurrency-sensitive suites. These are the classes that got
# locks/annotations in the correctness-tooling pass; a race anywhere in
# them must surface here.
run_matrix_entry "tsan" "${PREFIX}-tsan" \
  "-R (Dashboard|Concurrent|HttpServer|CubeCache|Replication|TemporalIndex|Warehouse|Hotpath)" \
  "-DRASED_SANITIZE=thread"

# ----------------------------------------------------------------- gate ---
note "summary"
if [ "${FAILURES}" -ne 0 ]; then
  printf '%d stage(s) failed\n' "${FAILURES}"
  exit 1
fi
printf 'all runnable stages passed\n'
