#!/usr/bin/env bash
# Correctness gate for RASED (see DESIGN.md "Correctness tooling").
#
# Runs, in order:
#   1. clang-format --dry-run      (skipped if clang-format is absent)
#   2. clang-tidy over src/        (skipped if clang-tidy is absent)
#   3. rased-lint over src/tests/bench/tools (project-specific rules,
#      DESIGN.md section 9; zero unsuppressed findings required)
#   4. shellcheck over the repo's shell scripts (skipped if absent)
#   5. plain build + full ctest
#   6. bench_concurrent_queries --quick (scaling/determinism smoke gate)
#   7. bench_query_hotpath --quick (batched-I/O + kernel smoke gate;
#      emits the BENCH_query_hotpath.json trajectory at the repo root)
#   8. bench_ingest_vs_query --quick (MVCC publication smoke gate: reader
#      makespan within 10% of the no-ingest baseline while days publish,
#      ingest within 25% of the exclusive baseline; emits the
#      BENCH_mvcc_ingest.json trajectory at the repo root; never skips)
#   9. bench_cube_compression --quick (adaptive-encoding smoke gate:
#      bit-identical rows dense-vs-adaptive / batched-vs-serial /
#      scalar-vs-AVX2, >= 3x bytes_read and page_reads reduction, warm
#      makespan within 10% of dense; emits the BENCH_cube_compression.json
#      trajectory at the repo root; never skips)
#  10. bench_profiler --quick (always-on profiler smoke gate: <= 2%
#      process-CPU overhead at 99 Hz, < 1% sample drop rate, bit-identical
#      query rows profiled vs not; emits the BENCH_profiler.json
#      trajectory at the repo root; never skips)
#  11. metrics smoke: boots a tiny synthetic instance, asserts the
#      Prometheus exposition (rased metrics + live GET /metrics) covers
#      every serving-path family and /api/trace returns spans, checks
#      /healthz, /readyz (incl. the build object), /api/selfstats,
#      /api/profile, /api/trace?worst=1, and the `rased profile`
#      renderer, gates the selfstats sampler (ring within byte budget,
#      <= 1% duty cycle), and writes BENCH_metrics_smoke.json +
#      BENCH_selfstats.json trajectories
#  12. ASan+UBSan build + full ctest (deadlock detector enabled)
#  13. TSan build + concurrency-focused ctest (dashboard/cache/collect/
#      index/warehouse/hotpath/codec/kernel/observability/profiler
#      suites)
#
# Exit code 0 means every stage that could run passed. Stages whose tool
# is missing are reported as SKIP, not failure, so the script works both
# in the clang-equipped CI image and in gcc-only dev containers.
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build-check)

set -u -o pipefail

cd "$(dirname "$0")/.." || exit 1
PREFIX="${1:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=0

note()  { printf '\n==== %s ====\n' "$*"; }
pass()  { printf 'PASS: %s\n' "$*"; }
skip()  { printf 'SKIP: %s\n' "$*"; }
fail()  { printf 'FAIL: %s\n' "$*"; FAILURES=$((FAILURES + 1)); }

# ---------------------------------------------------------------- format --
note "clang-format (dry run)"
if command -v clang-format >/dev/null 2>&1; then
  if git ls-files '*.h' '*.cc' | xargs -r clang-format --dry-run --Werror; then
    pass "clang-format"
  else
    fail "clang-format found formatting violations"
  fi
else
  skip "clang-format not installed"
fi

# ----------------------------------------------------------------- tidy ---
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY_DIR="${PREFIX}-tidy"
  if cmake -B "${TIDY_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null \
      && git ls-files 'src/*.cc' \
         | xargs -r -P "${JOBS}" -n 8 clang-tidy -p "${TIDY_DIR}" --quiet; then
    pass "clang-tidy"
  else
    fail "clang-tidy reported errors"
  fi
else
  skip "clang-tidy not installed"
fi

# ----------------------------------------------------------- rased-lint ---
# The project's own static analysis (tools/lint/, rules in DESIGN.md
# section 9). Needs no compiler beyond the one cmake already uses, so it
# never skips: a missing binary is a failure, not a SKIP.
note "rased-lint"
LINT_DIR="${PREFIX}-lint"
if cmake -B "${LINT_DIR}" -S . >/dev/null \
    && cmake --build "${LINT_DIR}" -j "${JOBS}" \
         --target rased_lint_bin >/dev/null; then
  if "${LINT_DIR}/tools/lint/rased-lint" --root .; then
    pass "rased-lint (zero unsuppressed findings)"
  else
    fail "rased-lint found violations"
  fi
else
  fail "rased-lint failed to build"
fi

# ------------------------------------------------------------ shellcheck --
note "shellcheck"
if command -v shellcheck >/dev/null 2>&1; then
  if git ls-files '*.sh' | xargs -r shellcheck -S warning; then
    pass "shellcheck"
  else
    fail "shellcheck reported issues"
  fi
else
  skip "shellcheck not installed"
fi

# ---------------------------------------------------------- build + test --
run_matrix_entry() {
  local name="$1" dir="$2" test_args="$3"
  shift 3
  note "${name}: configure + build + ctest"
  if ! cmake -B "${dir}" -S . "$@" >/dev/null; then
    fail "${name}: cmake configure"
    return
  fi
  if ! cmake --build "${dir}" -j "${JOBS}" >/dev/null; then
    fail "${name}: build"
    return
  fi
  # shellcheck disable=SC2086  # test_args is an intentional word list
  if (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" ${test_args}); then
    pass "${name}"
  else
    fail "${name}: ctest"
  fi
}

run_matrix_entry "plain" "${PREFIX}-plain" "" \
  -DRASED_WERROR=ON

# ------------------------------------------------------ concurrency smoke --
# Quick mode of the worker-pool scaling bench: builds a small index in the
# build tree, then asserts per-query accounting determinism and the >=4x
# 8-thread speedup over the old global-lock baseline.
note "bench_concurrent_queries --quick"
if [ -x "${PREFIX}-plain/bench/bench_concurrent_queries" ]; then
  if "${PREFIX}-plain/bench/bench_concurrent_queries" --quick \
      "bench_dir=${PREFIX}-plain/bench/concurrent_bench_data" >/dev/null; then
    pass "bench_concurrent_queries --quick"
  else
    fail "bench_concurrent_queries --quick"
  fi
else
  skip "bench_concurrent_queries not built (plain build failed?)"
fi

# ---------------------------------------------------- query hotpath smoke --
# Quick mode of the query hot-path bench: asserts the batched executor's
# rows and transfer counts match the serial per-cube reference, that
# adjacent page reads coalesce (read_ops < page_reads), and that the cold
# device-model time improves >= 2x. Its "query_hotpath" JSON line becomes
# the BENCH_query_hotpath.json trajectory tracked at the repo root.
note "bench_query_hotpath --quick"
if [ -x "${PREFIX}-plain/bench/bench_query_hotpath" ]; then
  HOTPATH_OUT="$("${PREFIX}-plain/bench/bench_query_hotpath" --quick \
      "bench_dir=${PREFIX}-plain/bench/hotpath_bench_data")"
  if [ $? -eq 0 ]; then
    printf '%s\n' "${HOTPATH_OUT}" \
      | grep '"bench":"query_hotpath"' > BENCH_query_hotpath.json
    pass "bench_query_hotpath --quick (trajectory in BENCH_query_hotpath.json)"
  else
    fail "bench_query_hotpath --quick"
  fi
else
  skip "bench_query_hotpath not built (plain build failed?)"
fi

# ------------------------------------------------- ingest-vs-query smoke --
# Quick mode of the MVCC ingest-vs-query bench: readers re-run a fixed
# workload while ingest publishes 35 days, and the bench itself asserts
# bit-for-bit rows/accounting, < 10% reader makespan degradation, < 25%
# ingest overhead vs the exclusive baseline, and >= 2 observed epochs.
# Like rased-lint this gate never skips: the non-blocking publication
# contract is load-bearing for the dashboard, so a missing binary is a
# failure, not a SKIP.
note "bench_ingest_vs_query --quick"
if [ -x "${PREFIX}-plain/bench/bench_ingest_vs_query" ]; then
  MVCC_OUT="$("${PREFIX}-plain/bench/bench_ingest_vs_query" --quick \
      "bench_dir=${PREFIX}-plain/bench/ingest_bench_data")"
  if [ $? -eq 0 ]; then
    printf '%s\n' "${MVCC_OUT}" \
      | grep '"bench":"mvcc_ingest"' > BENCH_mvcc_ingest.json
    pass "bench_ingest_vs_query --quick (trajectory in BENCH_mvcc_ingest.json)"
  else
    fail "bench_ingest_vs_query --quick"
  fi
else
  fail "bench_ingest_vs_query not built (plain build failed?)"
fi

# ------------------------------------------------ cube compression smoke --
# Quick mode of the adaptive-compression bench: twin indexes (forced-dense
# vs adaptive) over identical data, identical page geometry. The bench
# asserts bit-identical rows across dense/adaptive, batched/serial and
# scalar/AVX2 paths, >= 3x reduction in both bytes_read and page_reads,
# and a warm-cache makespan within 10% of dense. The storage encodings
# are load-bearing for every byte budget in the system, so this gate
# never skips: a missing binary is a failure, not a SKIP.
note "bench_cube_compression --quick"
if [ -x "${PREFIX}-plain/bench/bench_cube_compression" ]; then
  COMPRESSION_OUT="$("${PREFIX}-plain/bench/bench_cube_compression" --quick \
      "bench_dir=${PREFIX}-plain/bench/compression_bench_data")"
  if [ $? -eq 0 ]; then
    printf '%s\n' "${COMPRESSION_OUT}" \
      | grep '"bench":"cube_compression"' > BENCH_cube_compression.json
    pass "bench_cube_compression --quick (trajectory in BENCH_cube_compression.json)"
  else
    fail "bench_cube_compression --quick"
  fi
else
  fail "bench_cube_compression not built (plain build failed?)"
fi

# -------------------------------------------------------- profiler smoke --
# Quick mode of the continuous-profiler bench: interleaved profiled and
# unprofiled passes over a warm-cache workload. The bench itself asserts
# <= 2% process-CPU overhead at 99 Hz, < 1% sample drop rate, a non-empty
# retained folded report, and bit-identical result rows on vs off. The
# always-on claim is load-bearing for running the profiler in production,
# so this gate never skips: a missing binary is a failure, not a SKIP.
note "bench_profiler --quick"
if [ -x "${PREFIX}-plain/bench/bench_profiler" ]; then
  PROFILER_OUT="$("${PREFIX}-plain/bench/bench_profiler" --quick \
      "bench_dir=${PREFIX}-plain/bench/profiler_bench_data")"
  if [ $? -eq 0 ]; then
    printf '%s\n' "${PROFILER_OUT}" \
      | grep '"bench":"profiler"' > BENCH_profiler.json
    pass "bench_profiler --quick (trajectory in BENCH_profiler.json)"
  else
    fail "bench_profiler --quick"
  fi
else
  fail "bench_profiler not built (plain build failed?)"
fi

# ----------------------------------------------------------- metrics smoke --
# End-to-end observability gate: build a tiny synthetic instance with the
# CLI, then require that (a) `rased metrics probe=1` exposes every
# serving-path metric family, (b) the live dashboard serves the same
# exposition plus the HTTP families on GET /metrics, and (c) GET
# /api/trace returns per-span traces. A "metrics_snapshot" JSON line from
# the probe run becomes the BENCH_metrics_smoke.json trajectory — its own
# file, so the query-hotpath trajectory stays a pure bench series.
note "metrics smoke (rased metrics + GET /metrics + GET /api/trace)"
RASED_BIN="${PREFIX}-plain/tools/rased"
if [ -x "${RASED_BIN}" ]; then
  SMOKE_DIR="${PREFIX}-plain/metrics_smoke"
  METRICS_TXT="${SMOKE_DIR}/metrics.txt"
  rm -rf "${SMOKE_DIR}"
  mkdir -p "${SMOKE_DIR}"
  SMOKE_OK=1
  { "${RASED_BIN}" init "dir=${SMOKE_DIR}/instance" schema=bench \
      && "${RASED_BIN}" synth "publish=${SMOKE_DIR}/feed" \
           from=2021-01-01 to=2021-01-07 schema=bench seed=7 rate=20 \
      && "${RASED_BIN}" sync "dir=${SMOKE_DIR}/instance" \
           "feed=${SMOKE_DIR}/feed" \
      && "${RASED_BIN}" metrics "dir=${SMOKE_DIR}/instance" probe=1 \
           > "${METRICS_TXT}"; } >/dev/null 2>&1 || SMOKE_OK=0
  if [ "${SMOKE_OK}" -eq 1 ]; then
    # One family per instrumented subsystem (DESIGN.md section 8).
    for family in \
        rased_pager_read_ops_total \
        rased_pager_device_micros_total \
        rased_cache_hits_total \
        rased_cache_misses_total \
        rased_index_cube_reads_total \
        rased_index_cubes \
        rased_queries_total \
        rased_query_device_micros_bucket \
        rased_traces_recorded_total; do
      if ! grep -q "^${family}" "${METRICS_TXT}"; then
        fail "metrics smoke: family ${family} missing from rased metrics"
        SMOKE_OK=0
      fi
    done
  else
    fail "metrics smoke: CLI pipeline (init/synth/sync/metrics) failed"
  fi
  if [ "${SMOKE_OK}" -eq 1 ]; then
    awk '$1 == "rased_queries_total" { q = $2 }
         $1 == "rased_cache_hits_total" { h = $2 }
         $1 == "rased_cache_misses_total" { m = $2 }
         $1 == "rased_index_cube_reads_total" { c = $2 }
         $1 == "rased_pager_read_ops_total{file=\"index\"}" { r = $2 }
         END { printf "{\"bench\":\"metrics_snapshot\"," \
                      "\"queries_total\":%d,\"cache_hits\":%d," \
                      "\"cache_misses\":%d,\"cube_reads\":%d," \
                      "\"index_read_ops\":%d}\n", q, h, m, c, r }' \
      "${METRICS_TXT}" > BENCH_metrics_smoke.json
    pass "metrics smoke: rased metrics (snapshot in BENCH_metrics_smoke.json)"
  fi
  if [ "${SMOKE_OK}" -eq 1 ] && command -v curl >/dev/null 2>&1; then
    SERVE_LOG="${SMOKE_DIR}/serve.log"
    "${RASED_BIN}" serve "dir=${SMOKE_DIR}/instance" port=0 \
      serve_seconds=60 > "${SERVE_LOG}" 2>&1 &
    SERVE_PID=$!
    PORT=""
    for _ in $(seq 1 50); do
      PORT="$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\)/.*#\1#p' \
        "${SERVE_LOG}" 2>/dev/null | head -n 1)"
      [ -n "${PORT}" ] && break
      sleep 0.2
    done
    HTTP_OK=1
    HTTP_METRICS=""
    if [ -z "${PORT}" ]; then
      fail "metrics smoke: dashboard never reported its port"
      HTTP_OK=0
    else
      curl -fsS "http://127.0.0.1:${PORT}/api/query?group=country" \
        >/dev/null || HTTP_OK=0
      HTTP_METRICS="$(curl -fsS "http://127.0.0.1:${PORT}/metrics")" \
        || HTTP_OK=0
      for family in rased_http_requests_total rased_http_responses_total \
          rased_http_request_micros_bucket \
          rased_http_malformed_requests_total; do
        if ! printf '%s\n' "${HTTP_METRICS}" | grep -q "^${family}"; then
          fail "metrics smoke: family ${family} missing from GET /metrics"
          HTTP_OK=0
        fi
      done
      curl -fsS "http://127.0.0.1:${PORT}/api/trace" \
        | grep -q '"spans"' || HTTP_OK=0
      # Self-monitoring surface: health endpoints, the selfstats time
      # series, and the SLO/selfstats families in the live exposition.
      curl -fsS "http://127.0.0.1:${PORT}/healthz" | grep -q '^ok$' \
        || { fail "metrics smoke: /healthz not ok"; HTTP_OK=0; }
      curl -fsS "http://127.0.0.1:${PORT}/readyz" \
        | grep -q '"ready":true' \
        || { fail "metrics smoke: /readyz not ready"; HTTP_OK=0; }
      curl -fsS "http://127.0.0.1:${PORT}/api/selfstats" \
        | grep -q '"series"' \
        || { fail "metrics smoke: /api/selfstats has no series"; HTTP_OK=0; }
      for family in rased_slo_status rased_slo_burn_rate \
          rased_selfstats_samples_total rased_selfstats_resident_bytes \
          rased_build_info rased_profiler_samples_total \
          rased_profiler_threads_registered rased_query_alloc_ops_total \
          rased_query_alloc_bytes_bucket; do
        if ! printf '%s\n' "${HTTP_METRICS}" | grep -q "^${family}"; then
          fail "metrics smoke: family ${family} missing from GET /metrics"
          HTTP_OK=0
        fi
      done
      # Profiler + attribution surface: /readyz carries the build object,
      # /api/profile serves an on-demand folded capture (an idle server
      # may legitimately return zero stacks — CPU-time timers only fire
      # under load — so the gate is on the endpoints, not the counts),
      # /api/trace?worst=1 serves per-bucket worst-latency exemplars, and
      # the CLI renderer round-trips a live capture end to end.
      curl -fsS "http://127.0.0.1:${PORT}/readyz" \
        | grep -q '"build"' \
        || { fail "metrics smoke: /readyz has no build object"; HTTP_OK=0; }
      curl -fsS \
        "http://127.0.0.1:${PORT}/api/profile?seconds=1&format=folded" \
        >/dev/null \
        || { fail "metrics smoke: /api/profile folded fetch failed"; \
             HTTP_OK=0; }
      curl -fsS \
        "http://127.0.0.1:${PORT}/api/profile?window=1&format=json" \
        | grep -q '"samples"' \
        || { fail "metrics smoke: /api/profile json has no samples"; \
             HTTP_OK=0; }
      curl -fsS "http://127.0.0.1:${PORT}/api/trace?worst=1" \
        | grep -q '"worst"' \
        || { fail "metrics smoke: /api/trace?worst=1 has no worst"; \
             HTTP_OK=0; }
      if "${RASED_BIN}" profile "port=${PORT}" seconds=1 >/dev/null; then
        pass "metrics smoke: rased profile round-trips /api/profile"
      else
        fail "metrics smoke: rased profile failed"
        HTTP_OK=0
      fi
      # Sampler budget gates from the TSV meta line: the ring must honor
      # its byte budget, and the average sample cost must stay under 1%
      # of the sampling interval (duty-cycle proxy for "overhead <= 1%").
      SELFSTATS_TSV="${SMOKE_DIR}/selfstats.tsv"
      if curl -fsS "http://127.0.0.1:${PORT}/api/selfstats?format=tsv" \
          > "${SELFSTATS_TSV}" \
          && head -n 1 "${SELFSTATS_TSV}" | grep -q '^#selfstats '; then
        if head -n 1 "${SELFSTATS_TSV}" | awk '{
              for (i = 2; i <= NF; ++i) {
                split($i, kv, "="); meta[kv[1]] = kv[2]
              }
              ok = 1
              if (meta["resident_bytes"] > meta["byte_budget"]) ok = 0
              if (meta["samples_total"] > 0 &&
                  100 * meta["cost_micros_total"] / meta["samples_total"] \
                    > meta["interval_micros"]) ok = 0
              printf "{\"bench\":\"selfstats\",\"samples_total\":%d," \
                     "\"samples_retained\":%d,\"resident_bytes\":%d," \
                     "\"byte_budget\":%d,\"cost_micros_total\":%d," \
                     "\"interval_micros\":%d}\n", meta["samples_total"], \
                     meta["samples"], meta["resident_bytes"], \
                     meta["byte_budget"], meta["cost_micros_total"], \
                     meta["interval_micros"] > "BENCH_selfstats.json"
              exit ok ? 0 : 1
            }'; then
          pass "metrics smoke: selfstats budget gates (BENCH_selfstats.json)"
        else
          fail "metrics smoke: selfstats over byte budget or >1% duty cycle"
          HTTP_OK=0
        fi
      else
        fail "metrics smoke: /api/selfstats?format=tsv fetch failed"
        HTTP_OK=0
      fi
    fi
    kill "${SERVE_PID}" 2>/dev/null
    wait "${SERVE_PID}" 2>/dev/null
    if [ "${HTTP_OK}" -eq 1 ]; then
      pass "metrics smoke: GET /metrics + health + selfstats + /api/trace"
    else
      fail "metrics smoke: live GET /metrics + health + selfstats check"
    fi
  elif [ "${SMOKE_OK}" -eq 1 ]; then
    skip "curl not installed (live /metrics check)"
  fi
else
  skip "rased CLI not built (plain build failed?)"
fi

run_matrix_entry "asan+ubsan" "${PREFIX}-asan" "" \
  "-DRASED_SANITIZE=address;undefined"

# TSan: the concurrency-sensitive suites. These are the classes that got
# locks/annotations in the correctness-tooling pass, plus the
# observability suites (registry hammer, trace ring, /metrics endpoint);
# a race anywhere in them must surface here.
run_matrix_entry "tsan" "${PREFIX}-tsan" \
  "-R (Dashboard|Concurrent|HttpServer|CubeCache|CubeCodec|AggKernels|LegacyFormat|Replication|TemporalIndex|Warehouse|Hotpath|Ingest|Compression|Metrics|Trace|Slo|RequestContext|Profiler|HeapStats)" \
  "-DRASED_SANITIZE=thread"

# ----------------------------------------------------------------- gate ---
note "summary"
if [ "${FAILURES}" -ne 0 ]; then
  printf '%d stage(s) failed\n' "${FAILURES}"
  exit 1
fi
printf 'all runnable stages passed\n'
