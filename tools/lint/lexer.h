#ifndef RASED_TOOLS_LINT_LEXER_H_
#define RASED_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

/// A deliberately small C++ tokenizer for rased-lint (DESIGN.md §9). It
/// understands exactly as much of the language as the project rules need:
/// identifiers, numbers, string/char literals (including raw strings),
/// comments (kept as tokens so NOLINT-RASED directives survive),
/// preprocessor directives (collapsed to one token each so macro bodies
/// never confuse the checkers), and single-character punctuation. It does
/// not preprocess, template-parse, or build an AST — rules are written
/// against token patterns plus the project's naming conventions (members
/// end in '_', classes use {}), which is what keeps the tool at a few
/// hundred lines with no libclang dependency.
namespace rased_lint {

enum class TokKind {
  kIdent,
  kNumber,
  kString,   // "..." or R"(...)" — text holds the *unquoted* contents
  kChar,     // '...'
  kPunct,    // one character of operator/punctuation
  kComment,  // // or /* */ — text holds the full comment
  kDirective,  // a whole # line (with continuations), text holds it all
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

/// Tokenizes `src`. Never fails: unterminated literals/comments produce a
/// final token covering the rest of the file.
std::vector<Token> Lex(const std::string& src);

}  // namespace rased_lint

#endif  // RASED_TOOLS_LINT_LEXER_H_
