#ifndef RASED_TOOLS_LINT_LINT_H_
#define RASED_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

/// rased-lint: project-specific static analysis (DESIGN.md §9).
///
/// Enforces the RASED contracts that generic tooling cannot know about:
/// concurrency discipline (rased::Mutex only, guarded fields, no blocking
/// under a lock), Status discipline, observability discipline (metric
/// family naming, registration outside loops), and hygiene (banned
/// functions, include order, header guards).
///
/// Suppression: a finding is silenced by
///   // NOLINT-RASED(raw-mutex): reason
/// on the same line or the line directly above, where `rule` is the RLxxx
/// id or the rule name (comma-separated list for several). The reason is
/// mandatory; a missing or empty reason is itself a finding (RL011).
namespace rased_lint {

struct RuleInfo {
  const char* id;    // stable, e.g. "RL001"
  const char* name;  // readable, e.g. "raw-mutex"
  const char* what;  // one-line description
};

/// Every rule, in id order.
const std::vector<RuleInfo>& Rules();

struct Finding {
  std::string file;  // path as passed to LintFile
  int line = 0;
  std::string rule_id;
  std::string rule_name;
  std::string message;
};

struct LintStats {
  int suppressed = 0;  // findings silenced by a valid NOLINT-RASED
};

/// Lints one file. `display_path` is echoed into findings; `repo_path` is
/// the repo-relative path (forward slashes) that allowlists and the
/// header-guard rule key on; `contents` is the file body.
std::vector<Finding> LintFile(const std::string& display_path,
                              const std::string& repo_path,
                              const std::string& contents,
                              LintStats* stats = nullptr);

}  // namespace rased_lint

#endif  // RASED_TOOLS_LINT_LINT_H_
