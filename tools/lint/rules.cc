#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace rased_lint {

namespace {

// --------------------------------------------------------------------------
// Rule table
// --------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"RL001", "raw-mutex",
     "raw std/pthread synchronization primitive outside "
     "src/util/thread_annotations.h; use rased::Mutex/MutexLock"},
    {"RL002", "guarded-field",
     "non-const member of a mutex-holding class lacks RASED_GUARDED_BY / "
     "RASED_PT_GUARDED_BY (or const, std::atomic, RASED_CONST_AFTER_INIT)"},
    {"RL003", "blocking-under-lock",
     "sleep or blocking syscall inside a MutexLock scope"},
    {"RL004", "status-discard",
     "(void) / static_cast<void> discard of a call result defeats "
     "[[nodiscard]] Status checking"},
    {"RL005", "nodiscard-type",
     "class Status / Result must be declared [[nodiscard]]"},
    {"RL006", "metric-name",
     "metric family name must be a literal matching rased_[a-z0-9_]* with "
     "the type's suffix (_total counters, _micros/_bytes histograms)"},
    {"RL007", "metric-in-loop",
     "metric registry handle created inside a loop; hoist GetCounter/"
     "GetGauge/GetHistogram to construction"},
    {"RL008", "banned-function",
     "banned unsafe / non-thread-safe libc function"},
    {"RL009", "include-order",
     "include order is: own header, <system>, \"project\""},
    {"RL010", "header-guard",
     "header guard must be RASED_<PATH>_H_ with matching #define and "
     "#endif comment"},
    {"RL011", "bad-nolint",
     "malformed NOLINT-RASED directive (unknown rule or missing reason)"},
    {"RL012", "snapshot-member",
     "CatalogSnapshot / CatalogVersion stored in a member field; snapshots "
     "are per-operation pins — hold them as locals so retired epochs drain"},
    {"RL013", "vendor-intrinsics",
     "vendor SIMD intrinsics (immintrin.h, _mm*/__m* identifiers) outside "
     "src/cube/agg_kernels_avx2.cc; keep intrinsics behind the kernel "
     "dispatch table (cube/agg_kernels.h)"},
    {"RL014", "raw-wallclock",
     "raw std::chrono clock (system_clock / steady_clock / "
     "high_resolution_clock) outside src/util/clock.h; use NowMicros / "
     "NowWallMicros so a FakeClock can script time in tests"},
    {"RL015", "signal-unsafe",
     "non-async-signal-safe call inside a RASED_SIGNAL_HANDLER function "
     "(allocation, stdio, logging, mutex acquisition); handlers may only "
     "touch atomics, pre-allocated state, and AS-safe syscalls"},
};

const RuleInfo& Rule(const char* id) {
  for (const RuleInfo& rule : kRules) {
    if (std::string(rule.id) == id) return rule;
  }
  return kRules[0];  // unreachable for valid ids
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --------------------------------------------------------------------------
// Per-file context: token views, raw lines, suppression map
// --------------------------------------------------------------------------

struct Ctx {
  std::string display;
  std::string repo;
  std::vector<Token> all;          // every token, comments included
  std::vector<Token> code;         // comments + directives stripped
  std::vector<Token> directives;   // just the # lines
  std::map<int, std::set<std::string>> nolint;  // line -> rule ids/names
  std::vector<Finding> findings;
  int suppressed = 0;

  bool InRepo(const char* path) const { return repo == path; }

  bool Suppressed(int line, const RuleInfo& rule) {
    for (int probe : {line, line - 1}) {
      auto it = nolint.find(probe);
      if (it == nolint.end()) continue;
      if (it->second.count(rule.id) != 0 || it->second.count(rule.name) != 0) {
        ++suppressed;
        return true;
      }
    }
    return false;
  }

  void Emit(int line, const char* rule_id, std::string message) {
    const RuleInfo& rule = Rule(rule_id);
    if (Suppressed(line, rule)) return;
    findings.push_back({display, line, rule.id, rule.name, std::move(message)});
  }
};

/// Parses "// NOLINT-RASED(rule[, rule...]): reason" comments into the
/// suppression map; malformed directives become RL011 findings.
void ParseNolints(Ctx* ctx) {
  for (const Token& tok : ctx->all) {
    if (tok.kind != TokKind::kComment) continue;
    size_t at = tok.text.find("NOLINT-RASED");
    if (at == std::string::npos) continue;
    // A directive is the whole comment; prose that merely *mentions* the
    // marker (doc comments, this file) must not parse as one.
    if (tok.text.find_first_not_of("/* \t") != at) continue;
    size_t open = tok.text.find('(', at);
    size_t close = (open == std::string::npos)
                       ? std::string::npos
                       : tok.text.find(')', open);
    if (open == std::string::npos || close == std::string::npos ||
        open != at + std::string("NOLINT-RASED").size()) {
      ctx->Emit(tok.line, "RL011",
                "NOLINT-RASED needs an explicit rule list: "
                "// NOLINT-RASED(rule): reason");
      continue;
    }
    // Split the rule list on commas.
    std::set<std::string> rules;
    std::string list = tok.text.substr(open + 1, close - open - 1);
    bool ok = true;
    size_t pos = 0;
    while (pos <= list.size()) {
      size_t comma = list.find(',', pos);
      std::string rule = list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      while (!rule.empty() && rule.front() == ' ') rule.erase(rule.begin());
      while (!rule.empty() && rule.back() == ' ') rule.pop_back();
      bool known = false;
      for (const RuleInfo& info : kRules) {
        if (rule == info.id || rule == info.name) known = true;
      }
      if (!known) {
        ctx->Emit(tok.line, "RL011",
                  "NOLINT-RASED names unknown rule '" + rule + "'");
        ok = false;
      }
      rules.insert(rule);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    // The reason after ':' is mandatory — an unexplained suppression is
    // as opaque as the violation it hides.
    size_t colon = tok.text.find(':', close);
    std::string reason =
        colon == std::string::npos ? "" : tok.text.substr(colon + 1);
    reason.erase(0, reason.find_first_not_of(" \t"));
    if (reason.empty()) {
      ctx->Emit(tok.line, "RL011",
                "NOLINT-RASED needs a reason: // NOLINT-RASED(rule): why");
      ok = false;
    }
    if (ok) {
      ctx->nolint[tok.line].insert(rules.begin(), rules.end());
    }
  }
}

// --------------------------------------------------------------------------
// Token helpers
// --------------------------------------------------------------------------

bool IsIdent(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdent && tok.text == text;
}

bool IsPunct(const Token& tok, char c) {
  return tok.kind == TokKind::kPunct && tok.text.size() == 1 &&
         tok.text[0] == c;
}

/// Index of the token after the brace/paren block opening at `open`
/// (which must hold the opening character), or toks.size().
size_t SkipBalanced(const std::vector<Token>& toks, size_t open, char lhs,
                    char rhs) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], lhs)) ++depth;
    if (IsPunct(toks[i], rhs) && --depth == 0) return i + 1;
  }
  return toks.size();
}

// --------------------------------------------------------------------------
// RL001 raw-mutex
// --------------------------------------------------------------------------

void CheckRawMutex(Ctx* ctx) {
  if (ctx->InRepo("src/util/thread_annotations.h") ||
      ctx->InRepo("src/util/deadlock_detector.h") ||
      ctx->InRepo("src/util/deadlock_detector.cc")) {
    return;
  }
  static const std::set<std::string> kStdPrimitives = {
      "mutex",        "timed_mutex",          "recursive_mutex",
      "shared_mutex", "recursive_timed_mutex", "shared_timed_mutex",
      "lock_guard",   "scoped_lock",          "unique_lock",
      "shared_lock",  "condition_variable",   "condition_variable_any"};
  const std::vector<Token>& toks = ctx->code;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (IsIdent(toks[i], "std") && IsPunct(toks[i + 1], ':') &&
        IsPunct(toks[i + 2], ':') && toks[i + 3].kind == TokKind::kIdent &&
        kStdPrimitives.count(toks[i + 3].text) != 0) {
      ctx->Emit(toks[i + 3].line, "RL001",
                "std::" + toks[i + 3].text +
                    " outside util/thread_annotations.h; use rased::Mutex / "
                    "MutexLock (rased::CondVar for waiting)");
    }
  }
  for (const Token& tok : toks) {
    if (tok.kind == TokKind::kIdent &&
        (tok.text.rfind("pthread_mutex", 0) == 0 ||
         tok.text.rfind("pthread_rwlock", 0) == 0 ||
         tok.text.rfind("pthread_cond", 0) == 0)) {
      ctx->Emit(tok.line, "RL001",
                tok.text + " outside util/thread_annotations.h; use "
                           "rased::Mutex / MutexLock");
    }
  }
}

// --------------------------------------------------------------------------
// RL002 guarded-field
// --------------------------------------------------------------------------

/// One member-level statement of a class body: the tokens at member depth
/// (nested {...} blocks are represented by their '{' only).
struct MemberStmt {
  std::vector<const Token*> toks;
};

/// Splits a class body [begin, end) into member-level statements.
std::vector<MemberStmt> SplitMembers(const std::vector<Token>& toks,
                                     size_t begin, size_t end) {
  std::vector<MemberStmt> stmts;
  MemberStmt current;
  size_t i = begin;
  while (i < end) {
    const Token& tok = toks[i];
    if (IsPunct(tok, '{')) {
      current.toks.push_back(&tok);
      i = SkipBalanced(toks, i, '{', '}');
      // A block followed by ';' is an initializer or nested type — the
      // statement continues to the ';'. A bare block is a function body:
      // the statement ends here.
      if (i < end && IsPunct(toks[i], ';')) {
        current.toks.push_back(&toks[i]);
        ++i;
      }
      stmts.push_back(std::move(current));
      current = MemberStmt();
      continue;
    }
    current.toks.push_back(&tok);
    if (IsPunct(tok, ';')) {
      stmts.push_back(std::move(current));
      current = MemberStmt();
    }
    ++i;
  }
  if (!current.toks.empty()) stmts.push_back(std::move(current));
  return stmts;
}

/// The declared data-member name of a statement: the first identifier
/// ending in '_' that is directly followed by ';', '=', '{', '[', or an
/// annotation macro. Returns nullptr for non-member statements (function
/// declarations, access specifiers, nested types).
const Token* MemberName(const MemberStmt& stmt) {
  static const std::set<std::string> kAnnotations = {
      "RASED_GUARDED_BY", "RASED_PT_GUARDED_BY", "RASED_CONST_AFTER_INIT"};
  for (size_t i = 0; i + 1 < stmt.toks.size(); ++i) {
    const Token& tok = *stmt.toks[i];
    if (tok.kind != TokKind::kIdent || tok.text.size() < 2 ||
        tok.text.back() != '_') {
      continue;
    }
    const Token& next = *stmt.toks[i + 1];
    if (IsPunct(next, ';') || IsPunct(next, '=') || IsPunct(next, '{') ||
        IsPunct(next, '[') ||
        (next.kind == TokKind::kIdent && kAnnotations.count(next.text) != 0)) {
      return &tok;
    }
  }
  return nullptr;
}

bool StmtContains(const MemberStmt& stmt, const char* ident) {
  for (const Token* tok : stmt.toks) {
    if (IsIdent(*tok, ident)) return true;
  }
  return false;
}

/// Scans ctx->code for every class/struct definition (nested ones
/// included, since the token walk revisits them) and hands each one's
/// name and member-level statements to fn. Shared by the member-field
/// rules (RL002, RL012).
void ForEachClassBody(
    Ctx* ctx, const std::function<void(const std::string& name,
                                       const std::vector<MemberStmt>&)>& fn) {
  const std::vector<Token>& toks = ctx->code;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!(IsIdent(toks[i], "class") || IsIdent(toks[i], "struct"))) continue;
    if (i > 0 && IsIdent(toks[i - 1], "enum")) continue;
    // Head: up to '{' (definition) or ';'/'>'/',' (fwd decl, template
    // parameter). The class name is the last head identifier before the
    // base-clause ':' at paren depth 0.
    size_t j = i + 1;
    std::string name;
    int paren = 0;
    bool saw_body = false;
    for (; j < toks.size(); ++j) {
      const Token& tok = toks[j];
      if (IsPunct(tok, '(') || IsPunct(tok, '<')) ++paren;
      if (IsPunct(tok, ')') || IsPunct(tok, '>')) --paren;
      if (paren > 0) continue;
      if (IsPunct(tok, ';') || IsPunct(tok, ',') || (IsPunct(tok, '>'))) break;
      if (IsPunct(tok, ':')) {
        // Base clause: scan on for the '{' but stop collecting the name.
        while (j < toks.size() && !IsPunct(toks[j], '{') &&
               !IsPunct(toks[j], ';')) {
          ++j;
        }
      }
      if (j < toks.size() && IsPunct(toks[j], '{')) {
        saw_body = true;
        break;
      }
      if (tok.kind == TokKind::kIdent && tok.text != "final" &&
          tok.text != "alignas") {
        name = tok.text;
      }
    }
    if (!saw_body || j >= toks.size()) continue;
    size_t body_begin = j + 1;
    size_t body_end = SkipBalanced(toks, j, '{', '}') - 1;
    fn(name, SplitMembers(toks, body_begin, body_end));
  }
}

void CheckGuardedFields(Ctx* ctx) {
  ForEachClassBody(ctx, [ctx](const std::string& name,
                              const std::vector<MemberStmt>& stmts) {
    // The rule applies only to classes that hold a rased lock.
    bool holds_mutex = false;
    for (const MemberStmt& stmt : stmts) {
      if (MemberName(stmt) != nullptr &&
          (StmtContains(stmt, "Mutex") || StmtContains(stmt, "SharedMutex"))) {
        holds_mutex = true;
      }
    }
    if (!holds_mutex) return;

    for (const MemberStmt& stmt : stmts) {
      const Token* member = MemberName(stmt);
      if (member == nullptr) continue;
      if (StmtContains(stmt, "static") || StmtContains(stmt, "constexpr") ||
          StmtContains(stmt, "friend") || StmtContains(stmt, "using") ||
          StmtContains(stmt, "typedef") || StmtContains(stmt, "class") ||
          StmtContains(stmt, "struct") || StmtContains(stmt, "enum")) {
        continue;
      }
      // The lock members themselves and lock-free atomics are exempt.
      if (StmtContains(stmt, "Mutex") || StmtContains(stmt, "SharedMutex") ||
          StmtContains(stmt, "CondVar") || StmtContains(stmt, "atomic")) {
        continue;
      }
      // Top-level const members are immutable; const inside template
      // arguments does not count, so only the leading tokens qualify.
      bool is_const = false;
      for (const Token* tok : stmt.toks) {
        if (tok == member) break;
        if (IsIdent(*tok, "const")) {
          is_const = true;
          break;
        }
        if (!(tok->kind == TokKind::kIdent &&
              (tok->text == "mutable" || tok->text == "public" ||
               tok->text == "private" || tok->text == "protected")) &&
            !IsPunct(*tok, ':')) {
          break;  // past the cv/access prefix: const no longer top-level
        }
      }
      if (is_const) continue;
      if (StmtContains(stmt, "RASED_GUARDED_BY") ||
          StmtContains(stmt, "RASED_PT_GUARDED_BY") ||
          StmtContains(stmt, "RASED_CONST_AFTER_INIT")) {
        continue;
      }
      ctx->Emit(member->line, "RL002",
                "member '" + member->text + "' of mutex-holding class '" +
                    name +
                    "' needs RASED_GUARDED_BY / RASED_PT_GUARDED_BY (or "
                    "const, std::atomic, RASED_CONST_AFTER_INIT)");
    }
  });
}

// --------------------------------------------------------------------------
// RL003 blocking-under-lock
// --------------------------------------------------------------------------

void CheckBlockingUnderLock(Ctx* ctx) {
  if (ctx->InRepo("src/util/thread_annotations.h")) return;
  static const std::set<std::string> kLockHolders = {
      "MutexLock", "WriterMutexLock", "ReaderMutexLock"};
  static const std::set<std::string> kBlocking = {
      "sleep",     "usleep", "nanosleep", "sleep_for", "sleep_until",
      "accept",    "accept4", "connect",  "recv",      "recvfrom",
      "send",      "sendto", "select",    "poll",      "epoll_wait",
      "system",    "popen",  "waitpid"};
  const std::vector<Token>& toks = ctx->code;
  // Brace depth at every token, so a lock scope can run to the end of its
  // enclosing block.
  std::vector<int> depth(toks.size(), 0);
  int d = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsPunct(toks[i], '{')) ++d;
    depth[i] = d;
    if (IsPunct(toks[i], '}')) --d;
  }
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        kLockHolders.count(toks[i].text) == 0 ||
        toks[i + 1].kind != TokKind::kIdent || !IsPunct(toks[i + 2], '(')) {
      continue;
    }
    int scope_depth = depth[i];
    for (size_t j = i + 3; j < toks.size() && depth[j] >= scope_depth; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          kBlocking.count(toks[j].text) != 0 && j + 1 < toks.size() &&
          IsPunct(toks[j + 1], '(') &&
          !(j > 0 && (IsPunct(toks[j - 1], '.') ||
                      IsPunct(toks[j - 1], '>')))) {
        ctx->Emit(toks[j].line, "RL003",
                  "'" + toks[j].text + "' inside the " + toks[i].text +
                      " scope opened at line " + std::to_string(toks[i].line) +
                      "; never sleep or block while holding a lock");
      }
    }
  }
}

// --------------------------------------------------------------------------
// RL004 status-discard
// --------------------------------------------------------------------------

/// True when toks[i..] spells an id-expression followed by a call '(':
/// identifiers joined by ::, ., ->, * and & end in a '(' before any
/// terminator. That is the shape of "(void)DoThing(...)".
bool IsCallAfter(const std::vector<Token>& toks, size_t i) {
  for (size_t j = i; j < toks.size(); ++j) {
    const Token& tok = toks[j];
    if (IsPunct(tok, '(')) return j > i;  // need at least one name first
    if (tok.kind == TokKind::kIdent || IsPunct(tok, ':') ||
        IsPunct(tok, '.') || IsPunct(tok, '-') || IsPunct(tok, '>') ||
        IsPunct(tok, '*') || IsPunct(tok, '&')) {
      continue;
    }
    return false;
  }
  return false;
}

void CheckStatusDiscard(Ctx* ctx) {
  if (ctx->InRepo("tests/util/nodiscard_enforcement.cc")) return;
  const std::vector<Token>& toks = ctx->code;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (IsPunct(toks[i], '(') && IsIdent(toks[i + 1], "void") &&
        IsPunct(toks[i + 2], ')') && IsCallAfter(toks, i + 3)) {
      ctx->Emit(toks[i].line, "RL004",
                "(void) cast discards a call result; handle the Status or "
                "suppress with a reasoned NOLINT-RASED");
    }
    if (IsIdent(toks[i], "static_cast") && IsPunct(toks[i + 1], '<') &&
        IsIdent(toks[i + 2], "void") && IsPunct(toks[i + 3], '>') &&
        i + 5 < toks.size() && IsPunct(toks[i + 4], '(') &&
        IsCallAfter(toks, i + 5)) {
      ctx->Emit(toks[i].line, "RL004",
                "static_cast<void> discards a call result; handle the "
                "Status or suppress with a reasoned NOLINT-RASED");
    }
  }
}

// --------------------------------------------------------------------------
// RL005 nodiscard-type
// --------------------------------------------------------------------------

void CheckNodiscardType(Ctx* ctx) {
  const std::vector<Token>& toks = ctx->code;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!(IsIdent(toks[i], "class") || IsIdent(toks[i], "struct"))) continue;
    std::string name;
    bool has_nodiscard = false;
    bool fwd_decl = false;
    size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      const Token& tok = toks[j];
      if (IsPunct(tok, '{') || IsPunct(tok, ':')) break;
      if (IsPunct(tok, ';')) {
        fwd_decl = true;
        break;
      }
      if (IsPunct(tok, '>') || IsPunct(tok, ',')) break;  // template <class T>
      if (IsIdent(tok, "nodiscard")) has_nodiscard = true;
      if (tok.kind == TokKind::kIdent && tok.text != "nodiscard" &&
          tok.text != "final") {
        name = tok.text;
      }
    }
    if (fwd_decl || (name != "Status" && name != "Result")) continue;
    if (!has_nodiscard) {
      ctx->Emit(toks[i].line, "RL005",
                "class " + name +
                    " must be [[nodiscard]] so dropped error codes fail the "
                    "build (see tests/util/nodiscard_enforcement.cc)");
    }
  }
}

// --------------------------------------------------------------------------
// RL006 metric-name + RL007 metric-in-loop
// --------------------------------------------------------------------------

bool IsMetricGetter(const std::vector<Token>& toks, size_t i) {
  if (toks[i].kind != TokKind::kIdent) return false;
  const std::string& text = toks[i].text;
  if (text != "GetCounter" && text != "GetGauge" && text != "GetHistogram") {
    return false;
  }
  // Only method calls (obj.Get... / ptr->Get...): skips the registry's own
  // declarations and definitions.
  return i > 0 && (IsPunct(toks[i - 1], '.') || IsPunct(toks[i - 1], '>'));
}

void CheckMetricNames(Ctx* ctx) {
  // Production families only: tests register synthetic names on purpose.
  if (ctx->repo.rfind("src/", 0) != 0) return;
  const std::vector<Token>& toks = ctx->code;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsMetricGetter(toks, i) || !IsPunct(toks[i + 1], '(')) continue;
    if (toks[i + 2].kind != TokKind::kString) {
      ctx->Emit(toks[i].line, "RL006",
                toks[i].text +
                    " family name must be a string literal so the naming "
                    "rules stay statically checkable");
      continue;
    }
    // Adjacent literals concatenate.
    std::string name = toks[i + 2].text;
    for (size_t j = i + 3;
         j < toks.size() && toks[j].kind == TokKind::kString; ++j) {
      name += toks[j].text;
    }
    bool shape_ok = name.rfind("rased_", 0) == 0 && name.size() > 6;
    for (size_t k = 6; shape_ok && k < name.size(); ++k) {
      char c = name[k];
      if (!(std::islower(static_cast<unsigned char>(c)) != 0 ||
            std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '_')) {
        shape_ok = false;
      }
    }
    if (!shape_ok) {
      ctx->Emit(toks[i].line, "RL006",
                "metric family '" + name +
                    "' must match rased_[a-z0-9_]+ (DESIGN.md §8)");
      continue;
    }
    if (toks[i].text == "GetCounter" && !EndsWith(name, "_total")) {
      ctx->Emit(toks[i].line, "RL006",
                "counter family '" + name + "' must end in _total");
    } else if (toks[i].text == "GetHistogram" &&
               !(EndsWith(name, "_micros") || EndsWith(name, "_bytes"))) {
      ctx->Emit(toks[i].line, "RL006",
                "histogram family '" + name +
                    "' must end in a base unit (_micros or _bytes); the "
                    "exposition adds _bucket/_sum/_count");
    } else if (toks[i].text == "GetGauge" &&
               (EndsWith(name, "_total") || EndsWith(name, "_bucket") ||
                EndsWith(name, "_sum") || EndsWith(name, "_count"))) {
      ctx->Emit(toks[i].line, "RL006",
                "gauge family '" + name +
                    "' must not use a counter/histogram suffix");
    }
  }
}

void CheckMetricInLoop(Ctx* ctx) {
  // Hot paths live in src/; registry stress tests loop over Get* on
  // purpose to prove handle stability.
  if (ctx->repo.rfind("src/", 0) != 0) return;
  const std::vector<Token>& toks = ctx->code;
  // Collect the token ranges of braced for/while/do bodies.
  std::vector<std::pair<size_t, size_t>> loops;
  for (size_t i = 0; i < toks.size(); ++i) {
    size_t open = std::string::npos;
    if (IsIdent(toks[i], "for") || IsIdent(toks[i], "while")) {
      size_t j = i + 1;
      if (j < toks.size() && IsPunct(toks[j], '(')) {
        j = SkipBalanced(toks, j, '(', ')');
        if (j < toks.size() && IsPunct(toks[j], '{')) open = j;
      }
    } else if (IsIdent(toks[i], "do") && i + 1 < toks.size() &&
               IsPunct(toks[i + 1], '{')) {
      open = i + 1;
    }
    if (open != std::string::npos) {
      loops.emplace_back(open, SkipBalanced(toks, open, '{', '}'));
    }
  }
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsMetricGetter(toks, i)) continue;
    for (const auto& [begin, end] : loops) {
      if (i > begin && i < end) {
        ctx->Emit(toks[i].line, "RL007",
                  toks[i].text +
                      " inside a loop re-resolves the family on every "
                      "iteration; create handles once at construction");
        break;
      }
    }
  }
}

// --------------------------------------------------------------------------
// RL008 banned-function
// --------------------------------------------------------------------------

void CheckBannedFunctions(Ctx* ctx) {
  static const std::map<std::string, std::string> kBanned = {
      {"rand", "util/random.h Rng (seedable, data-race-free)"},
      {"srand", "util/random.h Rng"},
      {"sprintf", "snprintf or util/str_util.h"},
      {"vsprintf", "vsnprintf"},
      {"strcpy", "std::string / snprintf"},
      {"strcat", "std::string / snprintf"},
      {"gets", "fgets"},
      {"tmpnam", "mkstemp"},
      {"time", "util/clock.h NowMicros (fake-clock testable)"},
      {"gmtime", "util/date.h (gmtime is not thread-safe)"},
      {"localtime", "util/date.h (localtime is not thread-safe)"},
      {"asctime", "util/date.h FormatDate"},
      {"ctime", "util/date.h FormatDate"},
  };
  const std::vector<Token>& toks = ctx->code;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    auto it = kBanned.find(toks[i].text);
    if (it == kBanned.end() || !IsPunct(toks[i + 1], '(')) continue;
    if (i > 0) {
      // Member calls (x.time(), x->send()) are a different function.
      if (IsPunct(toks[i - 1], '.') || IsPunct(toks[i - 1], '>')) continue;
      // Qualified names: only std:: / :: versions are the libc function.
      if (IsPunct(toks[i - 1], ':') && i >= 3 && IsPunct(toks[i - 2], ':') &&
          toks[i - 3].kind == TokKind::kIdent && toks[i - 3].text != "std") {
        continue;
      }
    }
    ctx->Emit(toks[i].line, "RL008",
              "banned function '" + toks[i].text + "'; use " + it->second);
  }
}

// --------------------------------------------------------------------------
// RL009 include-order
// --------------------------------------------------------------------------

struct Include {
  int line = 0;
  bool angle = false;
  std::string path;
};

std::vector<Include> ParseIncludes(const Ctx& ctx) {
  std::vector<Include> includes;
  for (const Token& tok : ctx.directives) {
    size_t at = tok.text.find_first_not_of(" \t", 1);  // past '#'
    if (at == std::string::npos ||
        tok.text.compare(at, 7, "include") != 0) {
      continue;
    }
    size_t open = tok.text.find_first_of("<\"", at);
    if (open == std::string::npos) continue;
    char closer = tok.text[open] == '<' ? '>' : '"';
    size_t close = tok.text.find(closer, open + 1);
    if (close == std::string::npos) continue;
    includes.push_back({tok.line, tok.text[open] == '<',
                        tok.text.substr(open + 1, close - open - 1)});
  }
  return includes;
}

void CheckIncludeOrder(Ctx* ctx) {
  std::vector<Include> includes = ParseIncludes(*ctx);
  if (includes.empty()) return;
  // The own header of foo.cc is the quote-include whose basename is foo.h.
  std::string own_base;
  if (EndsWith(ctx->repo, ".cc")) {
    size_t slash = ctx->repo.find_last_of('/');
    std::string base =
        slash == std::string::npos ? ctx->repo : ctx->repo.substr(slash + 1);
    own_base = base.substr(0, base.size() - 3) + ".h";
  }
  bool saw_project = false;
  for (size_t i = 0; i < includes.size(); ++i) {
    const Include& inc = includes[i];
    size_t slash = inc.path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? inc.path : inc.path.substr(slash + 1);
    bool is_own = !inc.angle && !own_base.empty() && base == own_base;
    if (is_own && i != 0) {
      ctx->Emit(inc.line, "RL009",
                "own header \"" + inc.path + "\" must be the first include");
    }
    // The first quote-include of a .cc is its related header (the own
    // header, or the header under test in foo_test.cc) and sorts before
    // the <system> block, per Google style.
    bool is_related = !inc.angle && i == 0 && EndsWith(ctx->repo, ".cc");
    if (!inc.angle && !is_own && !is_related) saw_project = true;
    if (inc.angle && saw_project) {
      ctx->Emit(inc.line, "RL009",
                "<" + inc.path +
                    "> after project includes; order is: own header, "
                    "<system>, \"project\"");
    }
  }
}

// --------------------------------------------------------------------------
// RL010 header-guard
// --------------------------------------------------------------------------

void CheckHeaderGuard(Ctx* ctx) {
  if (!EndsWith(ctx->repo, ".h")) return;
  std::string rel = ctx->repo;
  if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
  std::string expected = "RASED_";
  for (char c : rel) {
    expected += std::isalnum(static_cast<unsigned char>(c)) != 0
                    ? static_cast<char>(
                          std::toupper(static_cast<unsigned char>(c)))
                    : '_';
  }
  expected += '_';

  auto second_word = [](const std::string& text) -> std::string {
    size_t sp = text.find_first_of(" \t");
    if (sp == std::string::npos) return "";
    size_t begin = text.find_first_not_of(" \t", sp);
    if (begin == std::string::npos) return "";
    size_t end = text.find_first_of(" \t\r\n", begin);
    return text.substr(begin, end == std::string::npos ? std::string::npos
                                                       : end - begin);
  };

  if (ctx->directives.size() < 2 ||
      ctx->directives[0].text.rfind("#ifndef", 0) != 0 ||
      second_word(ctx->directives[0].text) != expected) {
    ctx->Emit(ctx->directives.empty() ? 1 : ctx->directives[0].line, "RL010",
              "header must open with '#ifndef " + expected + "'");
    return;
  }
  if (ctx->directives[1].text.rfind("#define", 0) != 0 ||
      second_word(ctx->directives[1].text) != expected) {
    ctx->Emit(ctx->directives[1].line, "RL010",
              "guard #define must be '" + expected + "'");
    return;
  }
  const Token& last = ctx->directives.back();
  if (last.text.rfind("#endif", 0) != 0 ||
      last.text.find("// " + expected) == std::string::npos) {
    ctx->Emit(last.line, "RL010",
              "closing line must be '#endif  // " + expected + "'");
  }
}

// --------------------------------------------------------------------------
// RL012 snapshot-member
// --------------------------------------------------------------------------

/// MVCC snapshots are per-operation pins: a CatalogSnapshot (or a retained
/// shared_ptr<const CatalogVersion>) stored in a member field keeps its
/// epoch alive for the holder's whole lifetime, so every retirement behind
/// it can never be reclaimed. Pin a local, use it for one plan/execute,
/// let it drain. The index's own version machinery (the publication chain,
/// staging, and the retired queue) is the one legitimate long-term holder.
void CheckSnapshotMember(Ctx* ctx) {
  if (ctx->InRepo("src/index/temporal_index.h") ||
      ctx->InRepo("src/index/temporal_index.cc")) {
    return;
  }
  ForEachClassBody(ctx, [ctx](const std::string& name,
                              const std::vector<MemberStmt>& stmts) {
    for (const MemberStmt& stmt : stmts) {
      const Token* member = MemberName(stmt);
      if (member == nullptr) continue;
      if (StmtContains(stmt, "static") || StmtContains(stmt, "using") ||
          StmtContains(stmt, "typedef") || StmtContains(stmt, "friend")) {
        continue;
      }
      if (StmtContains(stmt, "CatalogSnapshot") ||
          StmtContains(stmt, "CatalogVersion")) {
        ctx->Emit(member->line, "RL012",
                  "member '" + member->text + "' of class '" + name +
                      "' pins a catalog version for the object's lifetime; "
                      "take a CatalogSnapshot as a local per operation so "
                      "retired epochs can drain");
      }
    }
  });
}

// --------------------------------------------------------------------------
// RL013 vendor-intrinsics
// --------------------------------------------------------------------------

/// Vendor SIMD intrinsics are confined to the one translation unit built
/// with -mavx2 (src/cube/agg_kernels_avx2.cc). Anywhere else they either
/// fail to compile (no -mavx2) or — worse — compile into code that traps
/// on CPUs without the extension, bypassing the runtime dispatch in
/// cube/agg_kernels.h. Portable code calls kernels::SumRun/AddRun and
/// lets the kernel table pick the implementation.
void CheckVendorIntrinsics(Ctx* ctx) {
  if (ctx->InRepo("src/cube/agg_kernels_avx2.cc")) return;

  static const std::vector<std::string> kIntrinsicHeaders = {
      "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
      "smmintrin.h", "tmmintrin.h", "nmmintrin.h", "pmmintrin.h",
      "wmmintrin.h", "ammintrin.h", "avxintrin.h", "avx2intrin.h",
      "arm_neon.h",  "arm_sve.h"};
  for (const Token& tok : ctx->directives) {
    if (tok.text.rfind("#include", 0) != 0) continue;
    for (const std::string& header : kIntrinsicHeaders) {
      if (tok.text.find(header) != std::string::npos) {
        ctx->Emit(tok.line, "RL013",
                  "include of vendor intrinsics header <" + header +
                      "> outside the AVX2 kernel translation unit");
      }
    }
  }

  for (const Token& tok : ctx->code) {
    if (tok.kind != TokKind::kIdent) continue;
    // _mm_/_mm256_/_mm512_ intrinsic calls and __m128/__m256/__m512
    // vector types (any suffix: __m256i, __m512d, ...).
    if (tok.text.rfind("_mm", 0) == 0 || tok.text.rfind("__m128", 0) == 0 ||
        tok.text.rfind("__m256", 0) == 0 || tok.text.rfind("__m512", 0) == 0) {
      ctx->Emit(tok.line, "RL013",
                "vendor intrinsic '" + tok.text +
                    "' outside the AVX2 kernel translation unit; use the "
                    "kernels:: dispatch table");
    }
  }
}

// --------------------------------------------------------------------------
// RL014 raw-wallclock
// --------------------------------------------------------------------------

/// Every time read outside src/util/clock.h must go through NowMicros /
/// NowWallMicros so SetClockForTesting makes it scriptable. The named
/// std::chrono clocks are how code escapes that seam, so the identifiers
/// themselves are banned (durations like std::chrono::seconds stay fine —
/// sleeping for a duration is not reading a clock).
void CheckRawWallClock(Ctx* ctx) {
  if (ctx->InRepo("src/util/clock.h")) return;

  for (const Token& tok : ctx->code) {
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "system_clock" || tok.text == "steady_clock" ||
        tok.text == "high_resolution_clock") {
      ctx->Emit(tok.line, "RL014",
                "raw clock '" + tok.text +
                    "' outside src/util/clock.h; use NowMicros() / "
                    "NowWallMicros() (fake-clock testable)");
    }
  }
}

// --------------------------------------------------------------------------
// RL015 signal-unsafe
// --------------------------------------------------------------------------

/// RASED_SIGNAL_HANDLER (util/signal_safety.h) marks functions that run in
/// an async signal handler. POSIX allows only the AS-safe function list
/// there: no malloc/free or operator new/delete (the heap lock may be held
/// by the interrupted thread), no stdio or logging (buffered, locking), no
/// mutex acquisition (self-deadlock). The checker scans each annotated
/// function's body for banned call identifiers, lock-holder RAII types,
/// and the new/delete keywords.
void CheckSignalHandlerSafety(Ctx* ctx) {
  // Call-shape bans: the identifier must be followed by '(' and not be a
  // member access (x.free() is a different function).
  static const std::set<std::string> kBannedCalls = {
      // Allocation.
      "malloc", "calloc", "realloc", "free", "posix_memalign", "aligned_alloc",
      // Stdio: buffered and lock-taking.
      "printf", "fprintf", "vfprintf", "snprintf", "vsnprintf", "sprintf",
      "puts", "fputs", "putc", "putchar", "fwrite", "fread", "fopen",
      "fclose", "fflush",
      // Logging allocates and locks.
      "RASED_LOG", "RASED_CHECK",
      // Raw pthread locking.
      "pthread_mutex_lock", "pthread_mutex_trylock", "pthread_rwlock_rdlock",
      "pthread_rwlock_wrlock", "pthread_cond_wait", "pthread_cond_signal",
      "pthread_cond_broadcast",
      // Misc AS-unsafe libc.
      "exit", "abort_handler", "syslog", "backtrace", "backtrace_symbols",
      "dladdr", "dlopen", "dlsym"};
  // RAII lock holders are banned on sight — `MutexLock lock(&mu_);` is an
  // acquisition even though the type name is never followed by '('.
  static const std::set<std::string> kBannedIdents = {
      "MutexLock", "WriterMutexLock", "ReaderMutexLock", "Mutex",
      "SharedMutex", "CondVar"};
  const std::vector<Token>& toks = ctx->code;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "RASED_SIGNAL_HANDLER")) continue;
    // The annotation precedes a function definition; its body is the first
    // '{' before any top-level ';' (a bare ';' means declaration only).
    size_t open = std::string::npos;
    int paren = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (IsPunct(toks[j], '(')) ++paren;
      if (IsPunct(toks[j], ')')) --paren;
      if (paren > 0) continue;
      if (IsPunct(toks[j], ';')) break;
      if (IsPunct(toks[j], '{')) {
        open = j;
        break;
      }
    }
    if (open == std::string::npos) continue;
    size_t end = SkipBalanced(toks, open, '{', '}');
    for (size_t k = open + 1; k + 1 < end; ++k) {
      const Token& tok = toks[k];
      if (tok.kind != TokKind::kIdent) continue;
      if (tok.text == "new" || tok.text == "delete") {
        ctx->Emit(tok.line, "RL015",
                  "'" + tok.text +
                      "' inside a RASED_SIGNAL_HANDLER body; the heap lock "
                      "may be held by the interrupted thread");
        continue;
      }
      const bool member_call =
          k > 0 && (IsPunct(toks[k - 1], '.') || IsPunct(toks[k - 1], '>'));
      if (!member_call && kBannedCalls.count(tok.text) != 0 &&
          IsPunct(toks[k + 1], '(')) {
        ctx->Emit(tok.line, "RL015",
                  "'" + tok.text +
                      "' is not async-signal-safe; RASED_SIGNAL_HANDLER code "
                      "may only use atomics, pre-allocated buffers, and "
                      "AS-safe syscalls (write, clock_gettime, ...)");
        continue;
      }
      if (kBannedIdents.count(tok.text) != 0) {
        ctx->Emit(tok.line, "RL015",
                  "'" + tok.text +
                      "' acquires a lock inside a RASED_SIGNAL_HANDLER body; "
                      "a handler interrupting the lock holder self-deadlocks");
      }
    }
    i = end;
  }
}

}  // namespace

// --------------------------------------------------------------------------
// Entry points
// --------------------------------------------------------------------------

const std::vector<RuleInfo>& Rules() { return kRules; }

std::vector<Finding> LintFile(const std::string& display_path,
                              const std::string& repo_path,
                              const std::string& contents, LintStats* stats) {
  Ctx ctx;
  ctx.display = display_path;
  ctx.repo = repo_path;
  ctx.all = Lex(contents);
  for (const Token& tok : ctx.all) {
    if (tok.kind == TokKind::kDirective) ctx.directives.push_back(tok);
    if (tok.kind != TokKind::kComment && tok.kind != TokKind::kDirective) {
      ctx.code.push_back(tok);
    }
  }
  ParseNolints(&ctx);
  CheckRawMutex(&ctx);
  CheckGuardedFields(&ctx);
  CheckBlockingUnderLock(&ctx);
  CheckStatusDiscard(&ctx);
  CheckNodiscardType(&ctx);
  CheckMetricNames(&ctx);
  CheckMetricInLoop(&ctx);
  CheckBannedFunctions(&ctx);
  CheckIncludeOrder(&ctx);
  CheckHeaderGuard(&ctx);
  CheckSnapshotMember(&ctx);
  CheckVendorIntrinsics(&ctx);
  CheckRawWallClock(&ctx);
  CheckSignalHandlerSafety(&ctx);
  std::sort(ctx.findings.begin(), ctx.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule_id < b.rule_id;
            });
  if (stats != nullptr) stats->suppressed += ctx.suppressed;
  return ctx.findings;
}

}  // namespace rased_lint
