#include "lexer.h"

#include <cctype>

namespace rased_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Token> Lex(const std::string& src) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last \n

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }

    const int tok_line = line;

    // Preprocessor directive: swallow the whole logical line, honoring
    // backslash continuations, so macro bodies stay out of the stream.
    if (c == '#' && at_line_start) {
      size_t start = i;
      while (i < n) {
        size_t eol = src.find('\n', i);
        if (eol == std::string::npos) {
          advance(n - i);
          break;
        }
        // A trailing backslash (optionally before \r) continues the line.
        size_t back = eol;
        while (back > i && (src[back - 1] == '\r')) --back;
        bool continues = back > i && src[back - 1] == '\\';
        advance(eol - i + 1);
        if (!continues) break;
      }
      tokens.push_back({TokKind::kDirective, src.substr(start, i - start),
                        tok_line});
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t eol = src.find('\n', i);
      size_t end = (eol == std::string::npos) ? n : eol;
      tokens.push_back({TokKind::kComment, src.substr(i, end - i), tok_line});
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t close = src.find("*/", i + 2);
      size_t end = (close == std::string::npos) ? n : close + 2;
      tokens.push_back({TokKind::kComment, src.substr(i, end - i), tok_line});
      advance(end - i);
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t paren = src.find('(', i + 2);
      if (paren != std::string::npos && paren - (i + 2) <= 16) {
        std::string delim = src.substr(i + 2, paren - (i + 2));
        std::string closer = ")" + delim + "\"";
        size_t close = src.find(closer, paren + 1);
        size_t content_end = (close == std::string::npos) ? n : close;
        tokens.push_back({TokKind::kString,
                          src.substr(paren + 1, content_end - paren - 1),
                          tok_line});
        size_t end = (close == std::string::npos) ? n : close + closer.size();
        advance(end - i);
        continue;
      }
    }

    // String / char literals with escapes.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      size_t end = (j < n) ? j + 1 : n;
      tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                        src.substr(i + 1, (end > i + 1 ? end - i - 2 : 0)),
                        tok_line});
      advance(end - i);
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      tokens.push_back({TokKind::kIdent, src.substr(i, j - i), tok_line});
      advance(j - i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      tokens.push_back({TokKind::kNumber, src.substr(i, j - i), tok_line});
      advance(j - i);
      continue;
    }

    tokens.push_back({TokKind::kPunct, std::string(1, c), tok_line});
    advance(1);
  }
  return tokens;
}

}  // namespace rased_lint
