// rased-lint: project-specific static analysis for RASED (DESIGN.md §9).
//
// Scans src/, tests/, bench/, and tools/ for violations of the project's
// concurrency, Status, observability, and hygiene contracts. Exit code 0
// means zero unsuppressed findings; 1 means findings; 2 means usage or
// I/O error.
//
// Usage:
//   rased-lint [--root DIR] [--json] [paths...]   lint files/directories
//   rased-lint --list-rules                       describe every rule
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;

/// Directories holding deliberate violations (rule fixtures); linting
/// them would drown the signal.
bool IsExcluded(const std::string& repo_path) {
  return repo_path.rfind("tests/lint/fixtures", 0) == 0;
}

bool IsSourceFile(const fs::path& path) {
  return path.extension() == ".h" || path.extension() == ".cc";
}

std::string RepoRelative(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  std::string out = (ec ? path : rel).generic_string();
  while (out.rfind("./", 0) == 0) out = out.substr(2);
  return out;
}

void CollectFiles(const fs::path& path, const fs::path& root,
                  std::vector<fs::path>* files) {
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::recursive_directory_iterator(path)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path()) &&
          !IsExcluded(RepoRelative(entry.path(), root))) {
        files->push_back(entry.path());
      }
    }
  } else {
    files->push_back(path);
  }
}

/// Minimal JSON string escaping for the --json findings stream.
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const rased_lint::RuleInfo& rule : rased_lint::Rules()) {
        std::printf("%s %-20s %s\n", rule.id, rule.name, rule.what);
      }
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "rased-lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    for (const char* dir : {"src", "tests", "bench", "tools"}) {
      if (fs::is_directory(fs::path(root) / dir)) {
        paths.push_back((fs::path(root) / dir).string());
      }
    }
    if (paths.empty()) {
      std::fprintf(stderr, "rased-lint: no src/tests/bench/tools under %s\n",
                   root.c_str());
      return 2;
    }
  }

  std::vector<fs::path> files;
  for (const std::string& path : paths) {
    if (!fs::exists(path)) {
      std::fprintf(stderr, "rased-lint: no such path: %s\n", path.c_str());
      return 2;
    }
    CollectFiles(path, root, &files);
  }
  std::sort(files.begin(), files.end());

  rased_lint::LintStats stats;
  int total = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "rased-lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    std::vector<rased_lint::Finding> findings = rased_lint::LintFile(
        file.string(), RepoRelative(file, root), contents.str(), &stats);
    for (const rased_lint::Finding& finding : findings) {
      ++total;
      if (json) {
        std::printf(
            "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\","
            "\"name\":\"%s\",\"message\":\"%s\"}\n",
            JsonEscape(finding.file).c_str(), finding.line,
            finding.rule_id.c_str(), finding.rule_name.c_str(),
            JsonEscape(finding.message).c_str());
      } else {
        std::printf("%s:%d: [%s %s] %s\n", finding.file.c_str(), finding.line,
                    finding.rule_id.c_str(), finding.rule_name.c_str(),
                    finding.message.c_str());
      }
    }
  }
  std::fprintf(stderr, "rased-lint: %zu files, %d finding%s, %d suppressed\n",
               files.size(), total, total == 1 ? "" : "s", stats.suppressed);
  return total == 0 ? 0 : 1;
}
