// The `rased` command-line tool; all logic lives in src/cli (testable).

#include "cli/cli.h"

int main(int argc, char** argv) { return rased::RunCli(argc, argv); }
